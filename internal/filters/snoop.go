package filters

import (
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// snoop implements the TCP-aware link-layer protocol of thesis §8.2.1
// (Balakrishnan et al.): the proxy caches data segments heading to the
// mobile, retransmits them locally when the wireless link loses them,
// and suppresses the duplicate acknowledgements that would otherwise
// trick the wired sender into congestion avoidance. The wired sender
// never learns the wireless link dropped anything, so its congestion
// window keeps tracking the wired path only.
//
// The key names the data direction (wired sender → mobile).
type snoop struct{}

// NewSnoop returns the snoop filter factory.
func NewSnoop() filter.Factory { return &snoop{} }

func (*snoop) Name() string              { return "snoop" }
func (*snoop) Priority() filter.Priority { return filter.Normal }
func (*snoop) Description() string {
	return "TCP-aware wireless caching: local retransmission and dup-ACK suppression"
}

// SnoopStats counts snoop protocol events for the experiment harness.
type SnoopStats struct {
	Cached            int64
	LocalRexmits      int64
	TimeoutRexmits    int64
	DupAcksSuppressed int64
}

// snoopInstances lets experiments retrieve per-stream stats; keyed by
// the forward stream key. Single simulation goroutine — no locking.
var snoopInstances = map[filter.Key]*snoopInst{}

// SnoopStatsFor returns the stats of the snoop instance on key k, if
// any.
func SnoopStatsFor(k filter.Key) (SnoopStats, bool) {
	if inst, ok := snoopInstances[k]; ok {
		return inst.stats, true
	}
	return SnoopStats{}, false
}

type cachedSeg struct {
	raw     []byte // full IP datagram as last forwarded
	seq     uint32
	length  uint32
	sentAt  sim.Time
	rexmits int
}

type snoopInst struct {
	env filter.Env
	fwd filter.Key

	cache   []*cachedSeg // sorted by seq
	lastAck uint32
	haveAck bool
	dupAcks int

	// Wireless RTT estimate for the local retransmission timer.
	srtt         time.Duration
	timer        *sim.Timer
	timerBackoff uint // consecutive timer firings without progress
	closed       bool

	stats SnoopStats
}

// Snoop straddles the TTSF boundary: it must see data segments in the
// wireless-side (post-TTSF) sequence space, so its forward out method
// runs above PriorityTTSF, while its reverse out method runs below so
// it reads the mobile's ACKs before the TTSF translates them back to
// the sender's space.
const (
	prioritySnoopFwd = PriorityTTSF + 5
	prioritySnoopRev = PriorityTTSF - 5
)

func (f *snoop) New(env filter.Env, k filter.Key, args []string) error {
	inst := &snoopInst{env: env, fwd: k, srtt: 50 * time.Millisecond}
	detachRev, err := env.Attach(k.Reverse(), filter.Hooks{
		Filter: "snoop", Priority: prioritySnoopRev,
		Out: inst.ackFromMobile, // Out so it can suppress (drop) dup ACKs
	})
	if err != nil {
		return err
	}
	_, err = env.Attach(k, filter.Hooks{
		Filter: "snoop", Priority: prioritySnoopFwd,
		Out: inst.dataToMobile, // Out so it sees the final payload bytes
		OnClose: func() {
			inst.closed = true
			inst.timer.Stop()
			delete(snoopInstances, k)
			detachRev()
		},
	})
	if err != nil {
		detachRev()
		return err
	}
	snoopInstances[k] = inst
	return nil
}

// dataToMobile caches data segments on their way to the wireless link.
func (inst *snoopInst) dataToMobile(p *filter.Packet) {
	if p.TCP == nil || p.Dropped() || len(p.TCP.Payload) == 0 {
		return
	}
	seq := p.TCP.Seq
	if inst.haveAck && seqLEu(seq+uint32(len(p.TCP.Payload)), inst.lastAck) {
		return // entirely old data, mobile already has it
	}
	// Snapshot the packet as it will appear on the wireless link,
	// including any modifications made earlier in the out queue.
	raw, err := p.Encode()
	if err != nil {
		return
	}
	now := inst.env.Clock().Now()
	// Replace an existing cache entry (sender retransmission) or
	// insert sorted.
	for _, c := range inst.cache {
		if c.seq == seq {
			// Sender retransmission refreshes the entry and gives the
			// local repair a fresh budget.
			c.raw = raw
			c.sentAt = now
			c.length = uint32(len(p.TCP.Payload))
			c.rexmits = 0
			inst.armTimer()
			return
		}
	}
	inst.stats.Cached++
	i := 0
	for i < len(inst.cache) && seqLTu(inst.cache[i].seq, seq) {
		i++
	}
	inst.cache = append(inst.cache, nil)
	copy(inst.cache[i+1:], inst.cache[i:])
	inst.cache[i] = &cachedSeg{raw: raw, seq: seq, length: uint32(len(p.TCP.Payload)), sentAt: now}
	inst.armTimer()
}

// ackFromMobile processes acknowledgements arriving from the wireless
// side: new ACKs clean the cache and update the RTT estimate;
// duplicate ACKs trigger a local retransmission and are suppressed.
func (inst *snoopInst) ackFromMobile(p *filter.Packet) {
	if p.TCP == nil || p.TCP.Flags&tcp.FlagACK == 0 {
		return
	}
	ack := p.TCP.Ack
	if !inst.haveAck || seqLTu(inst.lastAck, ack) {
		// New ACK: sample RTT from the oldest segment it covers, then
		// evict covered segments.
		for len(inst.cache) > 0 && seqLEu(inst.cache[0].seq+inst.cache[0].length, ack) {
			c := inst.cache[0]
			if c.rexmits == 0 { // Karn, locally
				m := inst.env.Clock().Now().Sub(c.sentAt)
				if m > 2*time.Second {
					m = 2 * time.Second // don't let stalls poison the estimate
				}
				inst.srtt = (3*inst.srtt + m) / 4
			}
			inst.cache = inst.cache[1:]
		}
		inst.lastAck = ack
		inst.haveAck = true
		inst.dupAcks = 0
		inst.timerBackoff = 0
		inst.armTimer()
		return
	}
	if ack == inst.lastAck && len(p.TCP.Payload) == 0 {
		// Duplicate ACK: the mobile is missing the segment at `ack`.
		inst.dupAcks++
		if c := inst.lookup(ack); c != nil {
			// Retransmit at most once per half-RTT per hole: the first
			// dup ack triggers immediately, later ones only after the
			// previous repair attempt has had time to land.
			age := inst.env.Clock().Now().Sub(c.sentAt)
			if inst.dupAcks == 1 || age > inst.srtt/2 {
				inst.retransmit(c)
				inst.stats.LocalRexmits++
			}
			inst.stats.DupAcksSuppressed++
			p.Drop()        // the wired sender never sees the duplicate
			inst.armTimer() // backstop relative to this repair attempt
		}
	}
}

func (inst *snoopInst) lookup(seq uint32) *cachedSeg {
	for _, c := range inst.cache {
		if c.seq == seq {
			return c
		}
	}
	return nil
}

func (inst *snoopInst) retransmit(c *cachedSeg) {
	c.rexmits++
	c.sentAt = inst.env.Clock().Now()
	inst.env.Inject(c.raw)
}

// armTimer schedules the local retransmission timeout for the oldest
// cached segment, backing off exponentially while firings make no
// progress (the mobile may be disconnected).
func (inst *snoopInst) armTimer() {
	inst.timer.Stop()
	if inst.closed || len(inst.cache) == 0 {
		return
	}
	rto := 2 * inst.srtt
	if rto < 20*time.Millisecond {
		rto = 20 * time.Millisecond
	}
	if rto > 500*time.Millisecond {
		rto = 500 * time.Millisecond
	}
	shift := inst.timerBackoff
	if shift > 5 {
		shift = 5
	}
	inst.timer = inst.env.Clock().After(rto<<shift, inst.onTimeout)
}

func (inst *snoopInst) onTimeout() {
	if inst.closed || len(inst.cache) == 0 {
		return
	}
	inst.retransmit(inst.cache[0])
	inst.stats.TimeoutRexmits++
	inst.timerBackoff++
	inst.armTimer()
}

// Sequence comparison helpers (unsigned 32-bit circular space).
func seqLTu(a, b uint32) bool { return int32(a-b) < 0 }
func seqLEu(a, b uint32) bool { return int32(a-b) <= 0 }
