package filters_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// winSample is one sender-side observation of the peer window.
type winSample struct {
	at  sim.Time
	win int
}

// senderWindows records the window field of every non-SYN segment the
// wired host receives — i.e. the (possibly rewritten) window the
// sender actually operates under.
func senderWindows(r *rig) *[]winSample {
	var out []winSample
	r.wStack.OnSegment = func(send bool, src, dst ip.Addr, seg *tcp.Segment) {
		if !send && seg.Flags&tcp.FlagSYN == 0 {
			out = append(out, winSample{at: r.sched.Now(), win: int(seg.Window)})
		}
	}
	return &out
}

// TestMwinTracksBDPWithinBounds: on a 1.5 Mb/s, 20 ms link the
// wireless BDP is ~8 KB. The mobile advertises 65535 throughout; mwin
// must pull the sender's view down to gain×BDP territory — far below
// the advertisement — while never clamping under one MSS, and the
// transfer must still complete intact.
func TestMwinTracksBDPWithinBounds(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 1.5e6, Delay: 20 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load mwin")
	r.cmd(t, r.proxyA, "load launcher")
	r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp mwin")

	wins := senderWindows(r)
	payload := pattern(400_000)
	got, _ := r.transfer(t, payload, 120*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted under mwin: %d of %d bytes", len(got), len(payload))
	}

	// Steady state: past the first second the controller has rate and
	// RTT samples. BDP = 187.5 KB/s × ~45 ms ≈ 8.4 KB; gain 2 → ~17 KB.
	// Allow generous headroom for srtt wobble, but the 65535
	// advertisement must be long gone.
	settled, minWin := 0, 1<<20
	for _, w := range *wins {
		if w.at < sim.Time(time.Second) {
			continue
		}
		settled++
		if w.win > 40000 {
			t.Fatalf("window %d at %v: not tracking the ~8 KB BDP", w.win, time.Duration(w.at))
		}
		if w.win < minWin {
			minWin = w.win
		}
	}
	if settled == 0 {
		t.Fatal("no settled window observations")
	}
	if minWin < 1460 {
		t.Fatalf("window clamped below one MSS: %d", minWin)
	}
}

// TestMwinCollapsesOnOutageAndRecovers: when the wireless leg stops
// delivering (hard blockage), consecutive zero-delivery rolls halve
// the window toward the MSS floor, so the first ACKs after recovery
// carry a tiny window — the wired sender cannot refill the proxy's
// queue faster than the link restarts. The gain then ramps the window
// back up.
func TestMwinCollapsesOnOutageAndRecovers(t *testing.T) {
	r := newRig(t, rigOpts{wireless: netsim.LinkConfig{Bandwidth: 4e6, Delay: 10 * time.Millisecond}})
	r.cmd(t, r.proxyA, "load tcp")
	r.cmd(t, r.proxyA, "load mwin")
	r.cmd(t, r.proxyA, "load launcher")
	r.cmd(t, r.proxyA, "add launcher 11.11.10.99 0 11.11.10.10 0 tcp mwin")

	// Hard outage on the data direction from t=3s to t=4.5s: the
	// direction stays up and routable but carries nothing.
	r.sched.After(3*time.Second, func() {
		r.wless.Shape(netsim.DirAB, netsim.Shaping{Fields: netsim.ShapeBandwidth, Bandwidth: 0})
	})
	r.sched.After(4500*time.Millisecond, func() {
		r.wless.Shape(netsim.DirAB, netsim.Shaping{Fields: netsim.ShapeBandwidth, Bandwidth: 4e6})
	})

	wins := senderWindows(r)
	payload := pattern(3_000_000)
	got, _ := r.transfer(t, payload, 120*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted across outage: %d of %d bytes", len(got), len(payload))
	}

	// The first window the sender sees after the outage must be near
	// the MSS floor (the halving rolls had ~1.5 s to bite), and the
	// ramp must reopen it within the following second.
	outageEnd := sim.Time(4500 * time.Millisecond)
	firstAfter, maxLater := -1, 0
	for _, w := range *wins {
		if w.at < outageEnd {
			continue
		}
		if firstAfter < 0 {
			firstAfter = w.win
		}
		if w.at < outageEnd.Add(2*time.Second) && w.win > maxLater {
			maxLater = w.win
		}
	}
	if firstAfter < 0 {
		t.Fatal("no ACKs observed after the outage")
	}
	if firstAfter > 4*1460 {
		t.Fatalf("first post-outage window %d: collapse did not reach the floor region", firstAfter)
	}
	if firstAfter < 1460 {
		t.Fatalf("post-outage window %d below one MSS", firstAfter)
	}
	if maxLater < 2*firstAfter {
		t.Fatalf("window did not ramp after recovery: first %d, max within 2s %d", firstAfter, maxLater)
	}
}
