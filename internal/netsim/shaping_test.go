package netsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
)

func link(a *Node) *Link { return a.Ifaces()[0].Link() }

func TestShapePerDirection(t *testing.T) {
	// Shaping only a→b leaves the reverse direction's timing untouched.
	s, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 1e6, Delay: 10 * time.Millisecond})
	l := link(a)
	l.Shape(DirAB, Shaping{Fields: ShapeBandwidth | ShapeDelay, Bandwidth: 100e3, Delay: 50 * time.Millisecond})

	var fwd, rev sim.Time
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { fwd = s.Now() })
	a.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { rev = s.Now() })
	a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 1000-ip.HeaderLen))
	b.SendIP(a.Addr(), ip.ProtoUDP, make([]byte, 1000-ip.HeaderLen))
	s.Run()

	// a→b: 1000B at 100 kb/s = 80ms serialize + 50ms delay.
	if want := sim.Time(130 * time.Millisecond); fwd != want {
		t.Fatalf("shaped a→b arrival = %v, want %v", fwd, want)
	}
	// b→a keeps the original 1 Mb/s + 10ms: 8ms + 10ms.
	if want := sim.Time(18 * time.Millisecond); rev != want {
		t.Fatalf("unshaped b→a arrival = %v, want %v", rev, want)
	}
}

func TestShapeSetFieldSemantics(t *testing.T) {
	// Only fields named in Fields move; everything else — including
	// zero-valued struct members — stays put.
	_, _, a, _ := twoHosts(t, LinkConfig{Bandwidth: 1e6, Delay: 10 * time.Millisecond,
		Jitter: time.Millisecond, Loss: Bernoulli{P: 0.5}})
	l := link(a)
	l.Shape(DirBoth, Shaping{Fields: ShapeBandwidth, Bandwidth: 5e6})

	got := l.ConfigAB()
	if got.Bandwidth != 5e6 {
		t.Fatalf("Bandwidth = %d, want 5e6", got.Bandwidth)
	}
	if got.Delay != 10*time.Millisecond || got.Jitter != time.Millisecond {
		t.Fatalf("unset delay/jitter moved: %+v", got)
	}
	if _, ok := got.Loss.(Bernoulli); !ok {
		t.Fatalf("unset loss model moved: %T", got.Loss)
	}

	// An explicitly set nil loss model means lossless, not "keep".
	l.Shape(DirBoth, Shaping{Fields: ShapeLoss})
	if _, ok := l.ConfigAB().Loss.(NoLoss); !ok {
		t.Fatalf("explicit nil loss = %T, want NoLoss", l.ConfigAB().Loss)
	}
}

// TestShapeZeroBandwidthMeansNoCapacity is the regression test for the
// old SetBandwidth(0) sharp edge: an explicit zero used to be silently
// ignored (and a zero LinkConfig defaults to 100 Mb/s). Under Shape an
// explicit zero is a real state — no capacity — distinct from both the
// default and from link-down.
func TestShapeZeroBandwidthMeansNoCapacity(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 1e6})
	l := link(a)
	delivered := 0
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { delivered++ })

	l.Shape(DirAB, Shaping{Fields: ShapeBandwidth, Bandwidth: 0})
	if got := l.ConfigAB().Bandwidth; got != 0 {
		t.Fatalf("explicit zero was rewritten to %d (old silent-default behavior)", got)
	}
	// Not link-down: routing still selects the direction...
	if l.DownAB() || l.Down() {
		t.Fatal("zero capacity must not read as link-down")
	}
	for i := 0; i < 3; i++ {
		a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 100))
	}
	s.Run()
	// ...but nothing crosses, and the drops are accounted distinctly.
	if delivered != 0 {
		t.Fatalf("delivered %d packets over a zero-capacity direction", delivered)
	}
	st := l.StatsAB()
	if st.ZeroCapDrops != 3 || st.QueueDrops != 0 || st.Dropped != 0 {
		t.Fatalf("drops = %+v, want 3 zero-capacity drops only", st)
	}
	// The reverse direction is untouched.
	gotRev := 0
	a.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { gotRev++ })
	b.SendIP(a.Addr(), ip.ProtoUDP, make([]byte, 100))
	s.Run()
	if gotRev != 1 {
		t.Fatal("reverse direction should still carry traffic")
	}
	// Restoring capacity restores the flow.
	l.Shape(DirAB, Shaping{Fields: ShapeBandwidth, Bandwidth: 1e6})
	a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 100))
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d after restore, want 1", delivered)
	}
}

func TestShapingCaptureRestore(t *testing.T) {
	_, _, a, _ := twoHosts(t, LinkConfig{Bandwidth: 2e6, Delay: 5 * time.Millisecond})
	l := link(a)
	prev := l.ShapingAB()
	if prev.Fields != ShapeAll {
		t.Fatalf("captured shaping fields = %v, want ShapeAll", prev.Fields)
	}
	l.Shape(DirAB, Shaping{Fields: ShapeAll, Bandwidth: 100, Delay: time.Second, Jitter: time.Second, Loss: Bernoulli{P: 1}})
	l.Shape(DirAB, prev)
	got := l.ConfigAB()
	if got.Bandwidth != 2e6 || got.Delay != 5*time.Millisecond || got.Jitter != 0 {
		t.Fatalf("restore mismatch: %+v", got)
	}
	if _, ok := got.Loss.(NoLoss); !ok {
		t.Fatalf("restored loss = %T, want NoLoss", got.Loss)
	}
}

func transitionLog(ts []Transition) string {
	out := ""
	for _, tr := range ts {
		out += tr.String() + "\n"
	}
	return out
}

func TestBlockageDeterminism(t *testing.T) {
	// Two blockage models with the same seed, on different links in
	// differently loaded networks, make identical transitions at
	// identical virtual instants: the dwell draws ride the model's own
	// RNG, not the scheduler's shared stream.
	run := func(withTraffic bool) string {
		s, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 10e6, Delay: time.Millisecond})
		cfg := BlockageConfig{
			Seed: 42, Dir: DirAB,
			LoS:      Shaping{Fields: ShapeBandwidth | ShapeLoss, Bandwidth: 10e6},
			NLoS:     Shaping{Fields: ShapeBandwidth | ShapeLoss, Bandwidth: 200e3, Loss: Bernoulli{P: 0.1}},
			MeanLoS:  800 * time.Millisecond,
			MeanNLoS: 150 * time.Millisecond,
		}
		bl := StartBlockage(s, link(a), cfg)
		if withTraffic {
			// Competing consumers of scheduler randomness: lossy traffic.
			b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) {})
			var tick func()
			tick = func() {
				a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 500))
				s.After(7*time.Millisecond, tick)
			}
			s.After(0, tick)
		}
		s.RunFor(10 * time.Second)
		bl.Stop()
		return transitionLog(bl.Transitions())
	}
	quiet, loaded := run(false), run(true)
	if quiet != loaded {
		t.Fatalf("blockage transitions depend on unrelated traffic:\n-- quiet --\n%s-- loaded --\n%s", quiet, loaded)
	}
	if len(quiet) == 0 {
		t.Fatal("no transitions logged")
	}
	// And a different seed takes a different trajectory.
	s2 := sim.NewScheduler(1)
	n2 := New(s2)
	a2 := n2.AddNode("a2")
	b2 := n2.AddNode("b2")
	l2 := n2.Connect(a2, ip.MustParseAddr("10.1.0.1"), b2, ip.MustParseAddr("10.1.0.2"), LinkConfig{})
	bl2 := StartBlockage(s2, l2, BlockageConfig{
		Seed: 43, Dir: DirAB,
		LoS:      Shaping{Fields: ShapeBandwidth, Bandwidth: 10e6},
		NLoS:     Shaping{Fields: ShapeBandwidth, Bandwidth: 200e3},
		MeanLoS:  800 * time.Millisecond,
		MeanNLoS: 150 * time.Millisecond,
	})
	s2.RunFor(10 * time.Second)
	if transitionLog(bl2.Transitions()) == quiet {
		t.Fatal("different seeds produced identical transition logs")
	}
}

func TestBlockageAppliesShapings(t *testing.T) {
	s, _, a, _ := twoHosts(t, LinkConfig{Bandwidth: 10e6})
	l := link(a)
	bl := StartBlockage(s, l, BlockageConfig{
		Seed: 7, Dir: DirAB,
		LoS:      Shaping{Fields: ShapeBandwidth, Bandwidth: 10e6},
		NLoS:     Shaping{Fields: ShapeBandwidth, Bandwidth: 100e3},
		MeanLoS:  200 * time.Millisecond,
		MeanNLoS: 200 * time.Millisecond,
	})
	defer bl.Stop()
	for i := 0; i < 200; i++ {
		s.RunFor(25 * time.Millisecond)
		want := int64(10e6)
		if bl.NLoS() {
			want = 100e3
		}
		if got := l.ConfigAB().Bandwidth; got != want {
			t.Fatalf("t=%v nlos=%v bandwidth=%d, want %d", s.Now(), bl.NLoS(), got, want)
		}
	}
	if len(bl.Transitions()) < 2 {
		t.Fatalf("only %d transitions in 5s", len(bl.Transitions()))
	}
}

func TestTraceReplayBoundaries(t *testing.T) {
	s, _, a, _ := twoHosts(t, LinkConfig{Bandwidth: 1e6})
	l := link(a)
	p := TraceProfile{Name: "t", Segments: []TraceSegment{
		{Dur: 100 * time.Millisecond, Shape: Shaping{Fields: ShapeBandwidth, Bandwidth: 5e6}},
		{Dur: 50 * time.Millisecond, Shape: Shaping{Fields: ShapeBandwidth | ShapeDelay, Bandwidth: 250e3, Delay: 20 * time.Millisecond}},
		{Dur: 75 * time.Millisecond, Shape: Shaping{Fields: ShapeBandwidth, Bandwidth: 0}},
	}}
	if p.Duration() != 225*time.Millisecond {
		t.Fatalf("Duration = %v", p.Duration())
	}

	// Looping: boundaries land at exact cumulative virtual times.
	tp := p.Replay(s, l, DirAB, true)
	s.RunFor(500 * time.Millisecond)
	tp.Stop()
	wantAt := []time.Duration{0, 100, 150, 225, 325, 375, 450}
	log := tp.Transitions()
	if len(log) != len(wantAt) {
		t.Fatalf("transitions = %d, want %d:\n%s", len(log), len(wantAt), transitionLog(log))
	}
	for i, tr := range log {
		if tr.At != sim.Time(wantAt[i]*time.Millisecond) {
			t.Fatalf("transition %d at %v, want %v", i, time.Duration(tr.At), wantAt[i]*time.Millisecond)
		}
		if tr.Seg != i%3 {
			t.Fatalf("transition %d seg = %d", i, tr.Seg)
		}
	}

	// Replay is trivially deterministic: same profile, same log.
	s2 := sim.NewScheduler(9)
	n2 := New(s2)
	a2 := n2.AddNode("a")
	b2 := n2.AddNode("b")
	l2 := n2.Connect(a2, ip.MustParseAddr("10.0.0.1"), b2, ip.MustParseAddr("10.0.0.2"), LinkConfig{})
	tp2 := p.Replay(s2, l2, DirAB, true)
	s2.RunFor(500 * time.Millisecond)
	tp2.Stop()
	if transitionLog(tp2.Transitions()) != transitionLog(log) {
		t.Fatal("trace replay not deterministic across networks")
	}

	// Non-looping: stops after the last segment, shaping left in place.
	s3 := sim.NewScheduler(3)
	n3 := New(s3)
	a3 := n3.AddNode("a")
	b3 := n3.AddNode("b")
	l3 := n3.Connect(a3, ip.MustParseAddr("10.0.0.1"), b3, ip.MustParseAddr("10.0.0.2"), LinkConfig{})
	tp3 := p.Replay(s3, l3, DirAB, false)
	s3.RunFor(time.Second)
	if !tp3.Done() {
		t.Fatal("non-looping replay never finished")
	}
	if got := len(tp3.Transitions()); got != 3 {
		t.Fatalf("non-looping transitions = %d, want 3", got)
	}
	if l3.ConfigAB().Bandwidth != 0 {
		t.Fatalf("final segment shaping not left in place: bw=%d", l3.ConfigAB().Bandwidth)
	}
}

// TestNLoSJitterReorders: a large-jitter NLoS segment reorders packets
// (arrival order differs from send order), deterministically per seed —
// the delay-variation artifact the mwin filter must ride out.
func TestNLoSJitterReorders(t *testing.T) {
	run := func(seed int64) []int {
		s := sim.NewScheduler(seed)
		n := New(s)
		a := n.AddNode("a")
		b := n.AddNode("b")
		l := n.Connect(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"),
			LinkConfig{Bandwidth: 50e6, Delay: time.Millisecond})
		// NLoS shaping: slow, long-delay, heavily jittered.
		l.Shape(DirAB, Shaping{Fields: ShapeBandwidth | ShapeDelay | ShapeJitter,
			Bandwidth: 2e6, Delay: 10 * time.Millisecond, Jitter: 40 * time.Millisecond})
		var order []int
		b.RegisterProto(ip.ProtoUDP, func(_ ip.Header, payload, _ []byte, _ *Iface) {
			order = append(order, int(payload[0]))
		})
		for i := 0; i < 20; i++ {
			a.SendIP(b.Addr(), ip.ProtoUDP, []byte{byte(i), 0, 0, 0})
		}
		s.Run()
		return order
	}
	got := run(5)
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatalf("40ms jitter never reordered 20 back-to-back packets: %v", got)
	}
	if fmt.Sprint(run(5)) != fmt.Sprint(got) {
		t.Fatal("jittered arrival order not deterministic per seed")
	}
}
