package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/ip"
	"repro/internal/sim"
)

// TestPerDirectionDown covers the asymmetric link-down state: taking
// only the b→a direction down must leave a→b traffic flowing, the
// per-direction getters must disagree, and Down() must report the link
// as not fully operational.
func TestPerDirectionDown(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{})
	var aGot, bGot int
	a.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { aGot++ })
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { bGot++ })
	link := a.Ifaces()[0].Link()

	link.SetDownBA(true)
	if !link.Down() {
		t.Fatal("Down() = false with the b→a direction disabled")
	}
	if link.DownAB() || !link.DownBA() {
		t.Fatalf("DownAB=%v DownBA=%v, want false/true", link.DownAB(), link.DownBA())
	}
	a.SendIP(b.Addr(), ip.ProtoUDP, []byte("forward"))
	b.SendIP(a.Addr(), ip.ProtoUDP, []byte("reverse"))
	s.Run()
	if bGot != 1 {
		t.Fatalf("a→b delivered %d packets with only b→a down, want 1", bGot)
	}
	if aGot != 0 {
		t.Fatalf("b→a delivered %d packets while down, want 0", aGot)
	}

	// Restoring the direction restores the reverse path; the symmetric
	// setter still clears everything.
	link.SetDownBA(false)
	if link.Down() {
		t.Fatal("Down() = true after restoring the only disabled direction")
	}
	b.SendIP(a.Addr(), ip.ProtoUDP, []byte("reverse2"))
	s.Run()
	if aGot != 1 {
		t.Fatalf("b→a delivered %d after restore, want 1", aGot)
	}
	link.SetDown(true)
	if !link.DownAB() || !link.DownBA() || !link.Down() {
		t.Fatal("SetDown(true) must disable both directions")
	}
	link.SetDown(false)
	if link.DownAB() || link.DownBA() || link.Down() {
		t.Fatal("SetDown(false) must re-enable both directions")
	}
}

// TestGilbertElliottStateTransitions drives the two-state model with a
// seeded RNG through good→bad→good cycles and checks the long-run drop
// rate against the analytic stationary value.
func TestGilbertElliottStateTransitions(t *testing.T) {
	g := &GilbertElliott{PGB: 0.1, PBG: 0.3, PBad: 0.9}
	rng := rand.New(rand.NewSource(99))

	transitions := 0
	wasBad := false
	drops := 0
	const n = 200000
	for i := 0; i < n; i++ {
		dropped := g.Drop(rng, 100)
		if dropped {
			drops++
		}
		if g.bad != wasBad {
			transitions++
			wasBad = g.bad
		}
	}
	// Both states must be visited repeatedly: a full good→bad→good
	// cycle is two transitions, and with PGB=0.1/PBG=0.3 thousands of
	// cycles fit in 200k packets.
	if transitions < 100 {
		t.Fatalf("only %d state transitions in %d packets, model stuck", transitions, n)
	}
	// Stationary bad-state probability is PGB/(PGB+PBG) = 0.25, so the
	// expected drop rate is 0.25 * PBad = 0.225. Allow a generous
	// tolerance for transition-edge effects.
	rate := float64(drops) / float64(n)
	if rate < 0.18 || rate > 0.27 {
		t.Fatalf("drop rate %.4f outside [0.18, 0.27] (expected ≈0.225)", rate)
	}
}

// TestGilbertElliottDeterminism pins that two models driven by
// identically seeded RNGs emit identical drop sequences — the property
// every chaos-run reproducibility claim rests on.
func TestGilbertElliottDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		g := &GilbertElliott{PGB: 0.05, PBG: 0.2, PBad: 0.8}
		rng := rand.New(rand.NewSource(seed))
		out := make([]bool, 5000)
		for i := range out {
			out[i] = g.Drop(rng, 1400)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop sequence diverged at packet %d for identical seeds", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 5000-packet drop sequences")
	}
}

// TestRoutingSkipsTxDownDirection verifies route lookup consults the
// transmit direction only: a prefix route whose egress direction is
// down is skipped (the packet has nowhere to go), while a route whose
// *reverse* direction is down still carries outbound traffic.
func TestRoutingSkipsTxDownDirection(t *testing.T) {
	s := sim.NewScheduler(3)
	n := New(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	link := n.Connect(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"), LinkConfig{})
	dst := ip.MustParseAddr("10.9.0.1") // not the peer: forces route lookup
	a.AddRoute(dst.Mask(24), 24, link.IfaceA())

	// Reverse direction down: outbound route still usable.
	link.SetDownBA(true)
	a.SendIP(dst, ip.ProtoUDP, []byte("x"))
	if a.Stats.IPOutNoRoutes != 0 {
		t.Fatalf("route skipped with only the reverse direction down")
	}
	// Transmit direction down: no usable route.
	link.SetDownBA(false)
	link.SetDownAB(true)
	a.SendIP(dst, ip.ProtoUDP, []byte("y"))
	if a.Stats.IPOutNoRoutes != 1 {
		t.Fatalf("IPOutNoRoutes = %d with the egress direction down, want 1", a.Stats.IPOutNoRoutes)
	}
	s.Run()
}
