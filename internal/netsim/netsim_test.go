package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
)

func twoHosts(t *testing.T, cfg LinkConfig) (*sim.Scheduler, *Network, *Node, *Node) {
	t.Helper()
	s := sim.NewScheduler(1)
	n := New(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"), cfg)
	return s, n, a, b
}

func TestDirectDelivery(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{})
	var got []byte
	b.RegisterProto(ip.ProtoUDP, func(h ip.Header, payload, raw []byte, in *Iface) {
		got = payload
		if h.Src != a.Addr() {
			t.Errorf("src = %v", h.Src)
		}
	})
	a.SendIP(b.Addr(), ip.ProtoUDP, []byte("hi"))
	s.Run()
	if string(got) != "hi" {
		t.Fatalf("payload = %q", got)
	}
}

func TestLinkDelayAndSerialization(t *testing.T) {
	// 1000-byte packet over 1 Mb/s with 10ms delay: 8ms serialize + 10ms.
	s, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 1e6, Delay: 10 * time.Millisecond})
	var arrival sim.Time
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { arrival = s.Now() })
	a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 1000-ip.HeaderLen))
	s.Run()
	want := sim.Time(18 * time.Millisecond)
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestQueueingBackToBack(t *testing.T) {
	// Two packets sent at once: the second waits for the first to
	// serialize.
	s, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 1e6, Delay: time.Millisecond})
	var arrivals []sim.Time
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { arrivals = append(arrivals, s.Now()) })
	a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 980)) // 1000B on wire = 8ms
	a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 980))
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != sim.Time(9*time.Millisecond) || arrivals[1] != sim.Time(17*time.Millisecond) {
		t.Fatalf("arrivals = %v, want 9ms and 17ms", arrivals)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 1e6, QueueLen: 4})
	delivered := 0
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { delivered++ })
	for i := 0; i < 10; i++ {
		a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 500))
	}
	s.Run()
	if delivered != 4 {
		t.Fatalf("delivered = %d, want 4 (queue cap)", delivered)
	}
	st := a.Ifaces()[0].Link().StatsAB()
	if st.QueueDrops != 6 {
		t.Fatalf("QueueDrops = %d, want 6", st.QueueDrops)
	}
}

func TestForwardingThroughRouter(t *testing.T) {
	s := sim.NewScheduler(1)
	n := New(s)
	a := n.AddNode("a")
	r := n.AddNode("r")
	b := n.AddNode("b")
	r.Forwarding = true
	la := n.Connect(a, ip.MustParseAddr("10.0.1.1"), r, ip.MustParseAddr("10.0.1.254"), LinkConfig{})
	lb := n.Connect(r, ip.MustParseAddr("10.0.2.254"), b, ip.MustParseAddr("10.0.2.1"), LinkConfig{})
	_ = la
	a.AddDefaultRoute(a.Ifaces()[0])
	b.AddDefaultRoute(b.Ifaces()[0])
	r.AddRoute(ip.MustParseAddr("10.0.2.0"), 24, lb.a)

	var got ip.Header
	b.RegisterProto(ip.ProtoUDP, func(h ip.Header, payload, raw []byte, in *Iface) { got = h })
	a.SendIP(b.Addr(), ip.ProtoUDP, []byte("via router"))
	s.Run()
	if got.Src != a.Addr() || got.Dst != b.Addr() {
		t.Fatalf("packet not forwarded: %+v", got)
	}
	if got.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", got.TTL)
	}
	if r.Stats.IPForwDatagrams != 1 {
		t.Fatalf("IPForwDatagrams = %d", r.Stats.IPForwDatagrams)
	}
}

func TestHostDropsTransit(t *testing.T) {
	s := sim.NewScheduler(1)
	n := New(s)
	a := n.AddNode("a")
	h := n.AddNode("h") // plain host, not forwarding
	c := n.AddNode("c")
	n.Connect(a, ip.MustParseAddr("10.0.1.1"), h, ip.MustParseAddr("10.0.1.2"), LinkConfig{})
	lhc := n.Connect(h, ip.MustParseAddr("10.0.2.1"), c, ip.MustParseAddr("10.0.2.2"), LinkConfig{})
	a.AddDefaultRoute(a.Ifaces()[0])
	h.AddRoute(ip.MustParseAddr("10.0.2.0"), 24, lhc.a)
	delivered := false
	c.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { delivered = true })
	a.SendIP(c.Addr(), ip.ProtoUDP, []byte("x"))
	s.Run()
	if delivered {
		t.Fatal("non-forwarding host relayed a transit packet")
	}
	if h.Stats.IPInAddrErrors != 1 {
		t.Fatalf("IPInAddrErrors = %d", h.Stats.IPInAddrErrors)
	}
}

func TestHookInterceptsAndRewrites(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{})
	b.SetHook(func(raw []byte, in *Iface) [][]byte {
		h, payload, err := ip.Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		if string(payload) == "drop me" {
			return nil
		}
		out, _ := h.Marshal([]byte("rewritten"))
		return [][]byte{out}
	})
	var got []string
	b.RegisterProto(ip.ProtoUDP, func(h ip.Header, payload, raw []byte, in *Iface) {
		got = append(got, string(payload))
	})
	a.SendIP(b.Addr(), ip.ProtoUDP, []byte("drop me"))
	a.SendIP(b.Addr(), ip.ProtoUDP, []byte("keep me"))
	s.Run()
	if len(got) != 1 || got[0] != "rewritten" {
		t.Fatalf("got = %v", got)
	}
}

func TestBernoulliLoss(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{Loss: Bernoulli{P: 0.5}, QueueLen: 10000})
	delivered := 0
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { delivered++ })
	const total = 2000
	for i := 0; i < total; i++ {
		a.SendIP(b.Addr(), ip.ProtoUDP, []byte("x"))
	}
	s.Run()
	if delivered < total*4/10 || delivered > total*6/10 {
		t.Fatalf("delivered = %d of %d with p=0.5", delivered, total)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	g := &GilbertElliott{PGB: 0.1, PBG: 0.3, PBad: 1.0}
	rng := rand.New(rand.NewSource(7))
	losses := 0
	bursts := 0
	inBurst := false
	for i := 0; i < 10000; i++ {
		if g.Drop(rng, 100) {
			losses++
			if !inBurst {
				bursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	if losses == 0 || bursts == 0 {
		t.Fatal("GE model produced no losses")
	}
	avgBurst := float64(losses) / float64(bursts)
	if avgBurst < 1.5 {
		t.Fatalf("average burst length %.2f, expected bursty (>1.5)", avgBurst)
	}
}

func TestLinkDownLosesInFlight(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{Delay: 10 * time.Millisecond})
	delivered := 0
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { delivered++ })
	a.SendIP(b.Addr(), ip.ProtoUDP, []byte("x"))
	link := a.Ifaces()[0].Link()
	s.After(5*time.Millisecond, func() { link.SetDown(true) })
	s.Run()
	if delivered != 0 {
		t.Fatal("packet survived link-down")
	}
	// Sends while down also vanish.
	link.SetDown(false)
	a.SendIP(b.Addr(), ip.ProtoUDP, []byte("y"))
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d after link restored", delivered)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{})
	var got bool
	b.RegisterProto(ip.ProtoICMP, func(h ip.Header, payload, raw []byte, in *Iface) {
		if h.Dst == Broadcast {
			got = true
		}
	})
	a.SendIP(Broadcast, ip.ProtoICMP, ip.MarshalICMP(ip.ICMPMessage{Type: ip.ICMPRouterSolicitation}))
	s.Run()
	if !got {
		t.Fatal("broadcast not delivered to link peer")
	}
}

func TestNoRouteCounted(t *testing.T) {
	s := sim.NewScheduler(1)
	n := New(s)
	a := n.AddNode("a")
	a.SendIP(ip.MustParseAddr("9.9.9.9"), ip.ProtoUDP, []byte("x"))
	s.Run()
	if a.Stats.IPOutNoRoutes != 1 {
		t.Fatalf("IPOutNoRoutes = %d", a.Stats.IPOutNoRoutes)
	}
}

func TestTTLExpiryDropsPacket(t *testing.T) {
	// Chain of forwarding nodes longer than the TTL... use a loop: two
	// routers with default routes pointing at each other.
	s := sim.NewScheduler(1)
	n := New(s)
	r1 := n.AddNode("r1")
	r2 := n.AddNode("r2")
	r1.Forwarding = true
	r2.Forwarding = true
	l := n.Connect(r1, ip.MustParseAddr("10.0.0.1"), r2, ip.MustParseAddr("10.0.0.2"), LinkConfig{})
	r1.AddDefaultRoute(l.a)
	r2.AddDefaultRoute(l.b)
	r1.SendIP(ip.MustParseAddr("99.0.0.1"), ip.ProtoUDP, []byte("loop"))
	s.Run() // must terminate: TTL hits zero
	if r1.Stats.IPForwDatagrams+r2.Stats.IPForwDatagrams == 0 {
		t.Fatal("packet never forwarded")
	}
	if r1.Stats.IPForwDatagrams > 64 {
		t.Fatal("TTL did not bound the loop")
	}
}

func TestAsymmetricLink(t *testing.T) {
	s := sim.NewScheduler(1)
	n := New(s)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.ConnectAsym(a, ip.MustParseAddr("10.0.0.1"), b, ip.MustParseAddr("10.0.0.2"),
		LinkConfig{Bandwidth: 1e6, Delay: time.Millisecond},
		LinkConfig{Bandwidth: 10e6, Delay: 5 * time.Millisecond})
	var fwd, rev sim.Time
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) {
		fwd = s.Now()
		b.SendIP(a.Addr(), ip.ProtoUDP, make([]byte, 980))
	})
	a.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { rev = s.Now() })
	a.SendIP(b.Addr(), ip.ProtoUDP, make([]byte, 980))
	s.Run()
	fwdTime := time.Duration(fwd)
	revTime := time.Duration(rev) - fwdTime
	if fwdTime != 9*time.Millisecond {
		t.Fatalf("forward time = %v", fwdTime)
	}
	if revTime != 5*time.Millisecond+800*time.Microsecond {
		t.Fatalf("reverse time = %v", revTime)
	}
}

func TestARQRedeliversLostFrames(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{
		Loss: Bernoulli{P: 0.3}, QueueLen: 10000,
		ARQ: &ARQConfig{RetransDelay: 5 * time.Millisecond, MaxRetries: 8, PDup: 0},
	})
	delivered := 0
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { delivered++ })
	const total = 500
	for i := 0; i < total; i++ {
		a.SendIP(b.Addr(), ip.ProtoUDP, []byte("frame"))
	}
	s.Run()
	// 30% loss with 8 retries: effective loss 0.3^9 ≈ 0 — everything
	// should arrive.
	if delivered < total-1 {
		t.Fatalf("delivered %d of %d with ARQ", delivered, total)
	}
	st := a.Ifaces()[0].Link().StatsAB()
	if st.ARQRetries == 0 {
		t.Fatal("no ARQ retries recorded at 30% loss")
	}
}

func TestARQDuplicates(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{
		Loss: Bernoulli{P: 0.5}, QueueLen: 10000,
		ARQ: &ARQConfig{RetransDelay: 5 * time.Millisecond, MaxRetries: 8, PDup: 1.0},
	})
	delivered := 0
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { delivered++ })
	const total = 300
	for i := 0; i < total; i++ {
		a.SendIP(b.Addr(), ip.ProtoUDP, []byte("frame"))
	}
	s.Run()
	st := a.Ifaces()[0].Link().StatsAB()
	if st.ARQDuplicates == 0 {
		t.Fatal("PDup=1 produced no duplicates")
	}
	if delivered <= total {
		t.Fatalf("delivered %d, expected more than %d with duplicates", delivered, total)
	}
}

func TestARQGivesUpAfterMaxRetries(t *testing.T) {
	// Certain loss: every frame exhausts its retries and is dropped.
	s, _, a, b := twoHosts(t, LinkConfig{
		Loss: Bernoulli{P: 1.0}, QueueLen: 100,
		ARQ: &ARQConfig{RetransDelay: time.Millisecond, MaxRetries: 3},
	})
	delivered := 0
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) { delivered++ })
	a.SendIP(b.Addr(), ip.ProtoUDP, []byte("doomed"))
	s.Run()
	if delivered != 0 {
		t.Fatal("frame survived certain loss")
	}
	if st := a.Ifaces()[0].Link().StatsAB(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d", st.Dropped)
	}
}

func TestJitterVariesDelay(t *testing.T) {
	s, _, a, b := twoHosts(t, LinkConfig{
		Bandwidth: 100e6, Delay: 10 * time.Millisecond, Jitter: 20 * time.Millisecond,
		QueueLen: 10000,
	})
	var arrivals []sim.Time
	b.RegisterProto(ip.ProtoUDP, func(ip.Header, []byte, []byte, *Iface) {
		arrivals = append(arrivals, s.Now())
	})
	for i := 0; i < 50; i++ {
		s.After(time.Duration(i)*100*time.Millisecond, func() {
			a.SendIP(b.Addr(), ip.ProtoUDP, []byte("j"))
		})
	}
	s.Run()
	if len(arrivals) != 50 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// Delays must vary within [10ms, 30ms).
	minD, maxD := time.Hour, time.Duration(0)
	for i, at := range arrivals {
		d := time.Duration(at) - time.Duration(i)*100*time.Millisecond
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD < 10*time.Millisecond || maxD >= 31*time.Millisecond {
		t.Fatalf("delay range [%v, %v] outside jitter bounds", minD, maxD)
	}
	if maxD-minD < 5*time.Millisecond {
		t.Fatalf("jitter too uniform: [%v, %v]", minD, maxD)
	}
}

func TestARQChargesRoundsWhenExhausted(t *testing.T) {
	// Certain loss: every frame burns all MaxRetries rounds and is
	// dropped. Each round consumes link capacity, so the accounting
	// must charge them even though no round succeeds — the pre-fix
	// code only credited retries on a successful round, reporting an
	// ARQ link that retransmitted constantly as having retried never.
	const frames, retries = 20, 3
	s, _, a, b := twoHosts(t, LinkConfig{
		Loss: Bernoulli{P: 1.0}, QueueLen: 100,
		ARQ: &ARQConfig{RetransDelay: time.Millisecond, MaxRetries: retries},
	})
	for i := 0; i < frames; i++ {
		a.SendIP(b.Addr(), ip.ProtoUDP, []byte("doomed"))
	}
	s.Run()
	st := a.Ifaces()[0].Link().StatsAB()
	if st.Dropped != frames {
		t.Fatalf("Dropped = %d, want %d", st.Dropped, frames)
	}
	if st.ARQRetries != frames*retries {
		t.Fatalf("ARQRetries = %d, want %d (each exhausted frame spent %d rounds)",
			st.ARQRetries, frames*retries, retries)
	}
}
