// Link shaping and the 5G/mmWave time-varying link models.
//
// The thesis's WaveLAN-era experiments vary one knob at a time
// (bandwidth or a loss model, both directions at once). mmWave-style
// links need more: capacity, delay, jitter, and loss all swing
// together, per direction, on ~100ms blockage timescales. Shaping is
// the explicit per-direction mutation record; Blockage is a
// scheduler-driven two-state LoS/NLoS process with seeded dwell times;
// TraceProfile replays a committed (time, shaping) segment list so an
// experiment's link dynamics are part of its reproducible input.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Direction selects which direction(s) of a duplex link an operation
// applies to, in Connect order: DirAB shapes a→b traffic.
type Direction uint8

const (
	DirAB   Direction = 1 << iota // a → b
	DirBA                         // b → a
	DirBoth = DirAB | DirBA
)

func (d Direction) String() string {
	switch d {
	case DirAB:
		return "ab"
	case DirBA:
		return "ba"
	case DirBoth:
		return "both"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// ShapeField names the link parameters a Shaping carries. Only fields
// named in Shaping.Fields are applied, so every value — including
// zero — is explicit: there is no zero-means-keep or zero-means-default
// ambiguity (the sharp edge of the old SetBandwidth mutator, where 0
// was silently ignored).
type ShapeField uint8

const (
	ShapeBandwidth ShapeField = 1 << iota
	ShapeDelay
	ShapeJitter
	ShapeLoss

	ShapeAll = ShapeBandwidth | ShapeDelay | ShapeJitter | ShapeLoss
)

// Shaping is one explicit retune of a link direction. Bandwidth 0
// (with ShapeBandwidth set) means no capacity — the direction stays up
// and routable but carries nothing, counted as ZeroCapDrops. Loss nil
// (with ShapeLoss set) means lossless.
type Shaping struct {
	Fields    ShapeField
	Bandwidth int64 // bits per second; 0 = no capacity
	Delay     time.Duration
	Jitter    time.Duration
	Loss      LossModel // nil = NoLoss
}

// String renders only the set fields, for transition logs and events.
func (s Shaping) String() string {
	out := ""
	app := func(f string, args ...any) {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf(f, args...)
	}
	if s.Fields&ShapeBandwidth != 0 {
		app("bw=%d", s.Bandwidth)
	}
	if s.Fields&ShapeDelay != 0 {
		app("delay=%v", s.Delay)
	}
	if s.Fields&ShapeJitter != 0 {
		app("jitter=%v", s.Jitter)
	}
	if s.Fields&ShapeLoss != 0 {
		if s.Loss == nil {
			app("loss=none")
		} else {
			app("loss=%T", s.Loss)
		}
	}
	if out == "" {
		return "unchanged"
	}
	return out
}

// apply folds the set fields of s into the direction's config.
func (d *direction) apply(s Shaping) {
	if s.Fields&ShapeBandwidth != 0 {
		d.cfg.Bandwidth = s.Bandwidth
	}
	if s.Fields&ShapeDelay != 0 {
		d.cfg.Delay = s.Delay
	}
	if s.Fields&ShapeJitter != 0 {
		d.cfg.Jitter = s.Jitter
	}
	if s.Fields&ShapeLoss != 0 {
		if s.Loss == nil {
			d.cfg.Loss = NoLoss{}
		} else {
			d.cfg.Loss = s.Loss
		}
	}
}

// shaping captures the direction's current tuning with all fields set.
func (d *direction) shaping() Shaping {
	return Shaping{
		Fields:    ShapeAll,
		Bandwidth: d.cfg.Bandwidth,
		Delay:     d.cfg.Delay,
		Jitter:    d.cfg.Jitter,
		Loss:      d.cfg.Loss,
	}
}

// Transition is one entry of a link model's transition log: at virtual
// time At the model applied Shape to its direction. NLoS marks the
// blocked state of a Blockage model; for a trace player it is false
// and Seg indexes the profile segment that started.
type Transition struct {
	At    sim.Time
	NLoS  bool
	Seg   int
	Shape Shaping
}

// String renders the transition for determinism diffs.
func (t Transition) String() string {
	state := "los"
	if t.NLoS {
		state = "nlos"
	}
	return fmt.Sprintf("%v %s seg=%d %v", time.Duration(t.At), state, t.Seg, t.Shape)
}

// BlockageConfig parameterizes a two-state LoS/NLoS blockage process.
type BlockageConfig struct {
	// Seed drives the model's own RNG: dwell-time draws never touch the
	// scheduler's shared stream, so two models with the same seed make
	// the same transitions at the same virtual instants regardless of
	// what traffic runs beside them.
	Seed int64
	// Dir is the link direction(s) the model retunes (DirAB when 0 is
	// not meaningful — pass explicitly; StartBlockage panics on 0).
	Dir Direction
	// LoS and NLoS are the shapings applied on entering each state.
	LoS, NLoS Shaping
	// MeanLoS and MeanNLoS are the mean exponential dwell times
	// (mmWave measurements put blockage events at ~100ms–1s NLoS
	// against seconds of LoS).
	MeanLoS, MeanNLoS time.Duration
	// MinDwell floors every dwell draw (default 10ms) so the model
	// cannot degenerate into a zero-interval flap storm.
	MinDwell time.Duration
}

// Blockage is a running LoS/NLoS process bound to one link.
type Blockage struct {
	sched *sim.Scheduler
	link  *Link
	cfg   BlockageConfig
	rng   *rand.Rand
	nlos  bool
	log   []Transition
	timer *sim.Timer
	done  bool
}

// StartBlockage starts a blockage process on l: the LoS shaping is
// applied immediately and the first NLoS transition is scheduled. The
// process runs until Stop.
func StartBlockage(s *sim.Scheduler, l *Link, cfg BlockageConfig) *Blockage {
	if cfg.Dir == 0 {
		panic("netsim: StartBlockage needs an explicit Direction")
	}
	if cfg.MinDwell <= 0 {
		cfg.MinDwell = 10 * time.Millisecond
	}
	b := &Blockage{sched: s, link: l, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	b.transition(false)
	return b
}

// transition enters the given state, applies its shaping, logs it, and
// schedules the next flip.
func (b *Blockage) transition(nlos bool) {
	if b.done {
		return
	}
	b.nlos = nlos
	shape, mean := b.cfg.LoS, b.cfg.MeanLoS
	kind := "blockage-los"
	if nlos {
		shape, mean = b.cfg.NLoS, b.cfg.MeanNLoS
		kind = "blockage-nlos"
	}
	b.link.Shape(b.cfg.Dir, shape)
	b.log = append(b.log, Transition{At: b.sched.Now(), NLoS: nlos, Shape: shape})
	if bus := b.link.net.obs; bus.Enabled() {
		bus.Emit("netsim", kind, b.cfg.Dir.String(), obs.F("dwell_ms", int(mean/time.Millisecond)))
	}
	dwell := b.cfg.MinDwell + time.Duration(b.rng.ExpFloat64()*float64(mean))
	b.timer = b.sched.After(dwell, func() { b.transition(!nlos) })
}

// NLoS reports whether the model is currently in the blocked state.
func (b *Blockage) NLoS() bool { return b.nlos }

// Transitions returns a copy of the transition log.
func (b *Blockage) Transitions() []Transition {
	out := make([]Transition, len(b.log))
	copy(out, b.log)
	return out
}

// Stop halts the process, leaving the link in whatever state it last
// applied (restore explicitly with Shape if needed).
func (b *Blockage) Stop() {
	b.done = true
	if b.timer != nil {
		b.timer.Stop()
	}
}

// TraceSegment is one segment of a replayable link trace: the shaping
// holds for Dur, then the next segment starts.
type TraceSegment struct {
	Dur   time.Duration
	Shape Shaping
}

// TraceProfile is a committed (time, bandwidth, delay, loss) trace —
// the reproducible link dynamics of a scenario. Replay applies each
// segment's shaping at exact virtual-time boundaries.
type TraceProfile struct {
	Name     string
	Segments []TraceSegment
}

// Duration is the total virtual time of one pass over the trace.
func (p TraceProfile) Duration() time.Duration {
	var d time.Duration
	for _, seg := range p.Segments {
		d += seg.Dur
	}
	return d
}

// TracePlayer is a running trace replay.
type TracePlayer struct {
	sched   *sim.Scheduler
	link    *Link
	dir     Direction
	profile TraceProfile
	loop    bool
	log     []Transition
	timer   *sim.Timer
	done    bool
}

// Replay starts replaying the profile on l: segment 0's shaping is
// applied immediately, each later segment at its cumulative boundary.
// With loop, the trace restarts after its last segment; otherwise the
// player stops there, leaving the final segment's shaping in place.
func (p TraceProfile) Replay(s *sim.Scheduler, l *Link, dir Direction, loop bool) *TracePlayer {
	if dir == 0 {
		panic("netsim: Replay needs an explicit Direction")
	}
	if len(p.Segments) == 0 {
		panic("netsim: Replay of an empty TraceProfile")
	}
	tp := &TracePlayer{sched: s, link: l, dir: dir, profile: p, loop: loop}
	tp.enter(0)
	return tp
}

// enter applies segment i and schedules the next boundary.
func (tp *TracePlayer) enter(i int) {
	if tp.done {
		return
	}
	seg := tp.profile.Segments[i]
	tp.link.Shape(tp.dir, seg.Shape)
	tp.log = append(tp.log, Transition{At: tp.sched.Now(), Seg: i, Shape: seg.Shape})
	if bus := tp.link.net.obs; bus.Enabled() {
		bus.Emit("netsim", "trace-segment", tp.profile.Name,
			obs.F("seg", i), obs.F("dur_ms", int(seg.Dur/time.Millisecond)))
	}
	next := i + 1
	if next >= len(tp.profile.Segments) {
		if !tp.loop {
			tp.timer = tp.sched.After(seg.Dur, func() { tp.done = true })
			return
		}
		next = 0
	}
	tp.timer = tp.sched.After(seg.Dur, func() { tp.enter(next) })
}

// Done reports whether a non-looping replay has passed its last
// boundary.
func (tp *TracePlayer) Done() bool { return tp.done }

// Transitions returns a copy of the replay log.
func (tp *TracePlayer) Transitions() []Transition {
	out := make([]Transition, len(tp.log))
	copy(out, tp.log)
	return out
}

// Stop halts the replay, leaving the current segment's shaping in
// place.
func (tp *TracePlayer) Stop() {
	tp.done = true
	if tp.timer != nil {
		tp.timer.Stop()
	}
}
