// Package netsim models the network the thesis ran on: wired hosts,
// routers, and mobile hosts joined by point-to-point links with
// configurable bandwidth, propagation delay, queue capacity, and loss.
//
// Wireless links are ordinary links with low bandwidth and a non-zero
// loss model (independent Bernoulli or bursty Gilbert–Elliott), which
// captures the "wireless variability" of thesis §2.3: the phenomena the
// service proxy's filters respond to are loss, delay, and bandwidth
// asymmetry, all of which are link-level parameters here.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ip"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Broadcast is the all-ones limited-broadcast address: packets sent to
// it are delivered to the node at the far end of the egress link and
// never forwarded.
var Broadcast = ip.MustParseAddr("255.255.255.255")

// LossModel decides the fate of each packet crossing a link direction.
type LossModel interface {
	// Drop reports whether the packet carrying n bytes is lost.
	Drop(rng *rand.Rand, n int) bool
}

// NoLoss never drops packets (wired links).
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(*rand.Rand, int) bool { return false }

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct{ P float64 }

// Drop implements LossModel.
func (b Bernoulli) Drop(rng *rand.Rand, _ int) bool { return rng.Float64() < b.P }

// GilbertElliott is a two-state burst-loss model: in the Good state
// packets survive, in the Bad state they drop with probability PBad.
// PGB and PBG are the per-packet transition probabilities.
type GilbertElliott struct {
	PGB, PBG float64 // good→bad and bad→good transition probabilities
	PBad     float64 // drop probability while in the bad state
	bad      bool
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(rng *rand.Rand, _ int) bool {
	if g.bad {
		if rng.Float64() < g.PBG {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.PGB {
			g.bad = true
		}
	}
	if g.bad {
		return rng.Float64() < g.PBad
	}
	return false
}

// LinkConfig describes one direction of a link. Zero values select a
// fast, lossless, generously buffered wire.
type LinkConfig struct {
	Bandwidth int64         // bits per second; 0 = 100 Mb/s
	Delay     time.Duration // propagation delay; 0 = 1ms
	// Jitter adds a uniform random extra delay in [0, Jitter) per
	// packet — the delay variation of a contended wireless medium
	// (thesis §2.3: "packet loss and retransmission will cause
	// variable delays"). Packets are re-sequenced on arrival order,
	// so large jitter can reorder.
	Jitter   time.Duration
	QueueLen int       // max packets queued for transmission; 0 = 64
	Loss     LossModel // nil = NoLoss
	// ARQ, when non-nil, layers an AIRMAIL-style link-layer
	// retransmission scheme under the loss model (thesis §3.2): frames
	// the loss model kills are redelivered after retransmission rounds
	// instead of lost, and a retransmission may duplicate a frame that
	// actually arrived. The transport above sees (almost) no loss but
	// variable delay and duplicates — the exact artifacts that confuse
	// TCP and that the TCP-aware snoop avoids.
	ARQ *ARQConfig
}

// ARQConfig parameterizes the link-layer retransmission model.
type ARQConfig struct {
	// RetransDelay is the cost of one retransmission round (frame
	// timeout + resend), added per retry.
	RetransDelay time.Duration
	// MaxRetries bounds the rounds before the frame is truly lost.
	MaxRetries int
	// PDup is the probability that a retransmission round also
	// delivers a duplicate of the frame (the link-level ack was lost,
	// so the sender resent a frame the receiver already had).
	PDup float64
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.Bandwidth == 0 {
		c.Bandwidth = 100e6
	}
	if c.Delay == 0 {
		c.Delay = time.Millisecond
	}
	if c.QueueLen == 0 {
		c.QueueLen = 64
	}
	if c.Loss == nil {
		c.Loss = NoLoss{}
	}
	return c
}

// LinkStats counts traffic over one direction of a link.
type LinkStats struct {
	Packets, Bytes int64 // accepted for transmission
	Dropped        int64 // lost to the loss model
	QueueDrops     int64 // lost to a full transmit queue
	DeliveredPkts  int64
	DeliveredBytes int64
	ARQRetries     int64 // link-layer retransmission rounds charged
	ARQDuplicates  int64 // frames delivered twice by the ARQ model
	// ZeroCapDrops counts packets offered while the direction was
	// shaped to zero capacity (blockage outage). Distinct from Dropped
	// (loss model) and QueueDrops (full queue): the link is up and
	// routable, it just cannot carry anything right now.
	ZeroCapDrops int64
	// PeakQueue is the high-water mark of the transmit queue.
	PeakQueue int
	// BusyTime accumulates serialization time, for utilization math.
	BusyTime time.Duration
}

// direction is the state of one direction of a duplex link.
type direction struct {
	cfg      LinkConfig
	nextFree sim.Time // when the transmitter finishes its current queue
	queued   int
	stats    LinkStats
	down     bool
}

// Link is a duplex point-to-point link between two interfaces.
type Link struct {
	net  *Network
	a, b *Iface
	ab   direction // a -> b
	ba   direction // b -> a
}

// StatsAB and StatsBA return per-direction counters.
func (l *Link) StatsAB() LinkStats { return l.ab.stats }
func (l *Link) StatsBA() LinkStats { return l.ba.stats }

// IfaceA and IfaceB return the link's endpoints in Connect order.
func (l *Link) IfaceA() *Iface { return l.a }
func (l *Link) IfaceB() *Iface { return l.b }

// ConfigAB and ConfigBA return the per-direction configurations.
func (l *Link) ConfigAB() LinkConfig { return l.ab.cfg }
func (l *Link) ConfigBA() LinkConfig { return l.ba.cfg }

// SetDown disables or re-enables both directions. Packets sent on a
// down link vanish, and packets in flight when it goes down are lost —
// this is how mobile disconnection and handoff gaps are modelled.
func (l *Link) SetDown(down bool) {
	l.ab.down = down
	l.ba.down = down
}

// SetDownAB disables or re-enables only the a→b direction — an
// asymmetric outage (e.g. the mobile can still hear the base station
// but not reach it). Routing and transmission consult per-direction
// state, so the reverse direction keeps flowing.
func (l *Link) SetDownAB(down bool) { l.ab.down = down }

// SetDownBA is SetDownAB for the b→a direction.
func (l *Link) SetDownBA(down bool) { l.ba.down = down }

// Down reports whether any direction of the link is disabled. With the
// symmetric SetDown this is the familiar whole-link state; after a
// per-direction SetDownAB/SetDownBA it means "not fully operational".
// Use DownAB/DownBA for the per-direction truth.
func (l *Link) Down() bool { return l.ab.down || l.ba.down }

// DownAB and DownBA report per-direction disabled state.
func (l *Link) DownAB() bool { return l.ab.down }
func (l *Link) DownBA() bool { return l.ba.down }

// Shape retunes the selected direction(s) of the link at run time —
// the mobility and blockage scenarios of §2.3 and the 5G pack. Only
// the fields named in s.Fields are applied; everything else keeps its
// current value, so an explicit zero is meaningful (Bandwidth 0 = no
// capacity, Delay 0 = instant propagation, Loss nil = lossless).
// Queued packets already scheduled keep their old serialization times.
func (l *Link) Shape(dir Direction, s Shaping) {
	if dir&DirAB != 0 {
		l.ab.apply(s)
	}
	if dir&DirBA != 0 {
		l.ba.apply(s)
	}
}

// ShapingAB and ShapingBA return the current tuning of one direction
// with every field marked set — ready to capture-and-restore around a
// temporary reshape (the fault injector's degrade path).
func (l *Link) ShapingAB() Shaping { return l.ab.shaping() }
func (l *Link) ShapingBA() Shaping { return l.ba.shaping() }

// QueuedAB and QueuedBA report the packets currently held in one
// direction's transmit queue — the proxy-side buffer occupancy the
// mmWave scenario compares with and without delay-aware window
// control.
func (l *Link) QueuedAB() int { return l.ab.queued }
func (l *Link) QueuedBA() int { return l.ba.queued }

// Iface is a node's attachment to a link.
type Iface struct {
	node *Node
	link *Link
	addr ip.Addr
}

// Addr returns the interface's IP address.
func (i *Iface) Addr() ip.Addr { return i.addr }

// Link returns the attached link (nil if detached).
func (i *Iface) Link() *Link { return i.link }

// peer returns the interface at the other end of the link.
func (i *Iface) peer() *Iface {
	if i.link == nil {
		return nil
	}
	if i.link.a == i {
		return i.link.b
	}
	return i.link.a
}

// dir returns the transmit direction for packets leaving i.
func (i *Iface) dir() *direction {
	if i.link.a == i {
		return &i.link.ab
	}
	return &i.link.ba
}

// Route maps a destination prefix to an egress interface.
type Route struct {
	Dst    ip.Addr
	Prefix int // prefix length; 0 matches everything (default route)
	Via    *Iface
}

// Hook intercepts packets arriving at a node, before routing or local
// delivery. It receives the raw datagram and the ingress interface and
// returns the datagrams that continue processing: return nil to drop,
// the input to pass through, or any number of (possibly rewritten)
// packets. The Comma service proxy installs itself as a Hook.
//
// Ownership: the returned slice is only valid until the hook's next
// invocation — hooks may (and the proxy does) reuse one emit slice
// for every packet, so the node consumes it synchronously and never
// retains it. The datagram byte slices inside it follow the usual
// rule: immutable once handed onward.
type Hook func(raw []byte, in *Iface) [][]byte

// Node is a host or router in the simulated network.
type Node struct {
	net      *Network
	name     string
	ifaces   []*Iface
	routes   []Route
	handlers map[byte]ProtoHandler
	hook     Hook
	ipID     uint16

	// Forwarding toggles router behaviour; hosts drop transit packets.
	Forwarding bool

	// Counters for the EEM's SNMP-style variables.
	Stats NodeStats
}

// NodeStats mirrors the SNMP MIB-II counters the EEM exports
// (thesis Table 6.1).
type NodeStats struct {
	IPInReceives      int64
	IPInHdrErrors     int64
	IPInAddrErrors    int64
	IPForwDatagrams   int64
	IPInUnknownProtos int64
	IPInDelivers      int64
	IPOutRequests     int64
	IPOutNoRoutes     int64
}

// ProtoHandler consumes locally delivered datagrams of one protocol.
type ProtoHandler func(h ip.Header, payload []byte, raw []byte, in *Iface)

// Network is a collection of nodes and links driven by one scheduler.
type Network struct {
	sched *sim.Scheduler
	nodes map[string]*Node
	// obs, when non-nil, receives link-level events (queue drops,
	// losses, ARQ activity). Never touched on the lossless fast path.
	obs *obs.Bus
}

// SetObs attaches the observability bus to the whole network.
func (n *Network) SetObs(b *obs.Bus) { n.obs = b }

// New creates an empty network on the given scheduler.
func New(s *sim.Scheduler) *Network {
	return &Network{sched: s, nodes: make(map[string]*Node)}
}

// Scheduler returns the scheduler driving the network.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// AddNode creates a named node. Names must be unique.
func (n *Network) AddNode(name string) *Node {
	if _, dup := n.nodes[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	node := &Node{net: n, name: name, handlers: make(map[byte]ProtoHandler)}
	n.nodes[name] = node
	return node
}

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Connect joins two nodes with a duplex link. addrA and addrB become
// interface addresses on the respective nodes; cfg applies to both
// directions.
func (n *Network) Connect(a *Node, addrA ip.Addr, b *Node, addrB ip.Addr, cfg LinkConfig) *Link {
	cfg = cfg.withDefaults()
	l := &Link{net: n}
	ia := &Iface{node: a, link: l, addr: addrA}
	ib := &Iface{node: b, link: l, addr: addrB}
	l.a, l.b = ia, ib
	l.ab = direction{cfg: cfg}
	l.ba = direction{cfg: cfg}
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	return l
}

// ConnectAsym is Connect with different configs per direction
// (cfgAB governs a→b traffic).
func (n *Network) ConnectAsym(a *Node, addrA ip.Addr, b *Node, addrB ip.Addr, cfgAB, cfgBA LinkConfig) *Link {
	l := n.Connect(a, addrA, b, addrB, cfgAB)
	l.ba.cfg = cfgBA.withDefaults()
	return l
}

// Disconnect detaches a link from both endpoints; packets in flight are
// lost. Used for mobile handoff.
func (n *Network) Disconnect(l *Link) {
	l.SetDown(true)
	l.a.node.removeIface(l.a)
	l.b.node.removeIface(l.b)
	l.a.link = nil
	l.b.link = nil
}

func (nd *Node) removeIface(target *Iface) {
	for i, f := range nd.ifaces {
		if f == target {
			nd.ifaces = append(nd.ifaces[:i], nd.ifaces[i+1:]...)
			return
		}
	}
}

// --- Node API ---------------------------------------------------------------

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Addr returns the node's primary address (its first interface), or 0.
func (nd *Node) Addr() ip.Addr {
	if len(nd.ifaces) == 0 {
		return 0
	}
	return nd.ifaces[0].addr
}

// Ifaces returns the node's interfaces.
func (nd *Node) Ifaces() []*Iface { return nd.ifaces }

// Clock returns the network's scheduler (satisfies tcp.Network).
func (nd *Node) Clock() *sim.Scheduler { return nd.net.sched }

// HasAddr reports whether a is one of the node's interface addresses.
func (nd *Node) HasAddr(a ip.Addr) bool {
	for _, f := range nd.ifaces {
		if f.addr == a {
			return true
		}
	}
	return false
}

// AddRoute installs a prefix route via the given interface.
func (nd *Node) AddRoute(dst ip.Addr, prefix int, via *Iface) {
	nd.routes = append(nd.routes, Route{Dst: dst.Mask(prefix), Prefix: prefix, Via: via})
}

// AddDefaultRoute installs the catch-all route.
func (nd *Node) AddDefaultRoute(via *Iface) { nd.AddRoute(0, 0, via) }

// ClearRoutes removes all routes (used at handoff).
func (nd *Node) ClearRoutes() { nd.routes = nil }

// lookupRoute returns the egress interface for dst by longest prefix.
func (nd *Node) lookupRoute(dst ip.Addr) *Iface {
	best := -1
	var via *Iface
	for _, r := range nd.routes {
		// Only the transmit direction matters for egress selection: a
		// link whose reverse direction is down still carries outbound
		// traffic (asymmetric outage).
		if r.Via.link == nil || r.Via.dir().down {
			continue
		}
		if dst.Mask(r.Prefix) == r.Dst && r.Prefix > best {
			best = r.Prefix
			via = r.Via
		}
	}
	return via
}

// RegisterProto installs the handler for an IP protocol number.
func (nd *Node) RegisterProto(proto byte, h ProtoHandler) { nd.handlers[proto] = h }

// SetHook installs the packet-interception hook (the service proxy).
func (nd *Node) SetHook(h Hook) { nd.hook = h }

// PacketHook returns the installed hook (benchmarks drive it
// directly to isolate filtering cost from the network simulation).
func (nd *Node) PacketHook() Hook { return nd.hook }

// SendIP builds and routes an IP datagram from this node's primary
// address. It satisfies tcp.Network.
func (nd *Node) SendIP(dst ip.Addr, proto byte, payload []byte) {
	nd.SendIPFrom(nd.Addr(), dst, proto, payload)
}

// SendIPFrom is SendIP with an explicit source address.
func (nd *Node) SendIPFrom(src, dst ip.Addr, proto byte, payload []byte) {
	nd.ipID++
	h := ip.Header{TTL: 64, Protocol: proto, ID: nd.ipID, Src: src, Dst: dst}
	raw, err := h.Marshal(payload)
	if err != nil {
		return
	}
	nd.Stats.IPOutRequests++
	nd.routePacket(raw, h.Dst, nil)
}

// InjectPacket routes a pre-built raw IP datagram from this node. The
// service proxy uses it to re-inject filtered packets.
func (nd *Node) InjectPacket(raw []byte) {
	h, _, err := ip.Unmarshal(raw)
	if err != nil {
		return
	}
	nd.Stats.IPOutRequests++
	nd.routePacket(raw, h.Dst, nil)
}

// routePacket picks an egress and transmits. in is the ingress iface
// for forwarded packets (nil for locally originated ones).
func (nd *Node) routePacket(raw []byte, dst ip.Addr, in *Iface) {
	// Direct delivery to a neighbour: if any interface's link peer owns
	// dst, use that link (implicit connected route).
	for _, f := range nd.ifaces {
		p := f.peer()
		if p != nil && (p.addr == dst || dst == Broadcast) && !f.dir().down {
			f.transmit(raw)
			if dst == Broadcast {
				continue
			}
			return
		}
	}
	if dst == Broadcast {
		return
	}
	via := nd.lookupRoute(dst)
	if via == nil {
		nd.Stats.IPOutNoRoutes++
		return
	}
	via.transmit(raw)
}

// receive processes a datagram arriving on iface in.
func (nd *Node) receive(raw []byte, in *Iface) {
	nd.Stats.IPInReceives++
	if !ip.VerifyChecksum(raw) {
		nd.Stats.IPInHdrErrors++
		return
	}
	if nd.hook == nil {
		nd.process(raw, in)
		return
	}
	// The hook's emit slice is borrowed: consume it before returning
	// (process never re-enters this node's hook synchronously — all
	// onward transmission is scheduler-deferred).
	for _, p := range nd.hook(raw, in) {
		nd.process(p, in)
	}
}

func (nd *Node) process(raw []byte, in *Iface) {
	h, payload, err := ip.Unmarshal(raw)
	if err != nil {
		nd.Stats.IPInHdrErrors++
		return
	}
	if nd.HasAddr(h.Dst) || h.Dst == Broadcast {
		nd.deliverLocal(h, payload, raw, in)
		return
	}
	if !nd.Forwarding {
		nd.Stats.IPInAddrErrors++
		return
	}
	if h.TTL <= 1 {
		return
	}
	// Rewrite TTL and checksum, then forward.
	fwd := make([]byte, len(raw))
	copy(fwd, raw)
	fwd[8] = h.TTL - 1
	fwd[10], fwd[11] = 0, 0
	hl := int(fwd[0]&0x0f) * 4
	ck := ip.Checksum(fwd[:hl])
	fwd[10], fwd[11] = byte(ck>>8), byte(ck)
	nd.Stats.IPForwDatagrams++
	nd.routePacket(fwd, h.Dst, in)
}

func (nd *Node) deliverLocal(h ip.Header, payload []byte, raw []byte, in *Iface) {
	handler, ok := nd.handlers[h.Protocol]
	if !ok {
		nd.Stats.IPInUnknownProtos++
		return
	}
	nd.Stats.IPInDelivers++
	handler(h, payload, raw, in)
}

// arqRecover redelivers a frame the loss model killed, charging one
// retransmission round per further loss, possibly duplicating it, and
// giving up after MaxRetries rounds.
func (d *direction) arqRecover(s *sim.Scheduler, peer *Iface, pkt []byte) {
	a := d.cfg.ARQ
	extra := time.Duration(0)
	for r := 1; r <= a.MaxRetries; r++ {
		extra += a.RetransDelay
		// Each retransmission round costs link capacity whether or not
		// it ultimately delivers, so charge it as it happens — a frame
		// that exhausts its budget still spent MaxRetries rounds.
		d.stats.ARQRetries++
		if d.cfg.Loss.Drop(s.Rand(), len(pkt)) {
			continue // this round lost too
		}
		dup := a.PDup > 0 && s.Rand().Float64() < a.PDup
		if b := peer.link.net.obs; b.Enabled() {
			b.Emit("netsim", "arq-recovered", linkKey(peer), obs.F("rounds", r), obs.F("len", len(pkt)))
		}
		s.After(extra, func() {
			if d.down || peer.link == nil {
				return
			}
			d.stats.DeliveredPkts++
			d.stats.DeliveredBytes += int64(len(pkt))
			peer.node.receive(pkt, peer)
			if dup {
				d.stats.ARQDuplicates++
				peer.node.receive(pkt, peer)
			}
		})
		return
	}
	d.stats.Dropped++ // exhausted the retry budget
	if b := peer.link.net.obs; b.Enabled() {
		b.Emit("netsim", "arq-exhausted", linkKey(peer), obs.F("rounds", a.MaxRetries), obs.F("len", len(pkt)))
	}
}

// linkKey renders the direction delivering to peer as "src->dst".
func linkKey(peer *Iface) string {
	return peer.peer().addr.String() + "->" + peer.addr.String()
}

// peerAddr renders f's link peer address, or "?" while detached.
func peerAddr(f *Iface) string {
	if p := f.peer(); p != nil {
		return p.addr.String()
	}
	return "?"
}

// RegisterMetrics exposes both directions' counters under prefix:
// "<prefix>.ab.*" covers a→b traffic, "<prefix>.ba.*" the reverse.
func (l *Link) RegisterMetrics(r *obs.Registry, prefix string) {
	reg := func(d *direction, p string) {
		r.Counter(p+".packets", func() int64 { return d.stats.Packets })
		r.Counter(p+".bytes", func() int64 { return d.stats.Bytes })
		r.Counter(p+".dropped", func() int64 { return d.stats.Dropped })
		r.Counter(p+".queue_drops", func() int64 { return d.stats.QueueDrops })
		r.Counter(p+".delivered_pkts", func() int64 { return d.stats.DeliveredPkts })
		r.Counter(p+".delivered_bytes", func() int64 { return d.stats.DeliveredBytes })
		r.Counter(p+".arq_retries", func() int64 { return d.stats.ARQRetries })
		r.Counter(p+".arq_duplicates", func() int64 { return d.stats.ARQDuplicates })
	}
	reg(&l.ab, prefix+".ab")
	reg(&l.ba, prefix+".ba")
}

// RegisterMetrics exposes the node's IP MIB counters under prefix.
func (nd *Node) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+".ip_in_receives", func() int64 { return nd.Stats.IPInReceives })
	r.Counter(prefix+".ip_in_hdr_errors", func() int64 { return nd.Stats.IPInHdrErrors })
	r.Counter(prefix+".ip_in_addr_errors", func() int64 { return nd.Stats.IPInAddrErrors })
	r.Counter(prefix+".ip_forw_datagrams", func() int64 { return nd.Stats.IPForwDatagrams })
	r.Counter(prefix+".ip_in_delivers", func() int64 { return nd.Stats.IPInDelivers })
	r.Counter(prefix+".ip_out_requests", func() int64 { return nd.Stats.IPOutRequests })
	r.Counter(prefix+".ip_out_no_routes", func() int64 { return nd.Stats.IPOutNoRoutes })
}

// transmit serializes a packet onto the interface's link direction.
func (f *Iface) transmit(raw []byte) {
	l := f.link
	if l == nil {
		return
	}
	d := f.dir()
	if d.down {
		return
	}
	if d.cfg.Bandwidth <= 0 {
		// Shaped to zero capacity: the direction is up and routable but
		// cannot serialize anything — a deep-blockage outage, distinct
		// from link-down (routing would avoid that) and from a full
		// queue (which will drain).
		d.stats.ZeroCapDrops++
		if b := l.net.obs; b.Enabled() {
			b.Emit("netsim", "zero-capacity", f.addr.String()+"->"+peerAddr(f), obs.F("len", len(raw)))
		}
		return
	}
	if d.queued >= d.cfg.QueueLen {
		d.stats.QueueDrops++
		if b := l.net.obs; b.Enabled() {
			b.Emit("netsim", "queue-drop", f.addr.String()+"->"+peerAddr(f), obs.F("len", len(raw)))
		}
		return
	}
	s := l.net.sched
	now := s.Now()
	start := d.nextFree
	if start < now {
		start = now
	}
	serialize := time.Duration(int64(len(raw)) * 8 * int64(time.Second) / d.cfg.Bandwidth)
	d.nextFree = start.Add(serialize)
	d.queued++
	if d.queued > d.stats.PeakQueue {
		d.stats.PeakQueue = d.queued
	}
	d.stats.Packets++
	d.stats.Bytes += int64(len(raw))
	d.stats.BusyTime += serialize
	peer := f.peer()
	delay := d.cfg.Delay
	if d.cfg.Jitter > 0 {
		delay += time.Duration(s.Rand().Int63n(int64(d.cfg.Jitter)))
	}
	arrive := d.nextFree.Add(delay)
	pkt := raw // captured; callers must not mutate after transmit
	s.At(d.nextFree, func() { d.queued-- })
	s.At(arrive, func() {
		if d.down || peer.link == nil {
			return // link went down while in flight
		}
		if d.cfg.Loss.Drop(s.Rand(), len(pkt)) {
			if d.cfg.ARQ != nil {
				d.arqRecover(s, peer, pkt)
				return
			}
			d.stats.Dropped++
			if b := l.net.obs; b.Enabled() {
				b.Emit("netsim", "loss", linkKey(peer), obs.F("len", len(pkt)))
			}
			return
		}
		d.stats.DeliveredPkts++
		d.stats.DeliveredBytes += int64(len(pkt))
		peer.node.receive(pkt, peer)
	})
}
