package repro

// One benchmark per reproduced table/figure (see DESIGN.md's E-index):
// each runs the experiment's core scenario once per iteration, so
// `go test -bench=. -benchmem` gives wall-clock and allocation costs
// for every artifact, and the experiment driver (cmd/wsim) prints the
// corresponding tables.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eem"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/itcp"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i/253)
	}
	return b
}

// transferOnce builds a system with the given services and pushes n
// bytes through it; it fails the benchmark if the stream misbehaves.
func transferOnce(b *testing.B, cfg core.Config, cmds []string, cmdsB []string, n int, wantAll bool) *core.TransferResult {
	b.Helper()
	sys := core.NewSystem(cfg)
	for _, c := range cmds {
		sys.MustCommand(c)
	}
	for _, c := range cmdsB {
		sys.MustCommandB(c)
	}
	res, err := sys.Transfer(pattern(n), 7, 5001, 900*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	if wantAll && len(res.Received) != n {
		b.Fatalf("delivered %d of %d bytes", len(res.Received), n)
	}
	return res
}

func launcherCmd(services string) string {
	return fmt.Sprintf("add launcher %v 0 %v 0 %s", core.WiredAddr, core.MobileAddr, services)
}

// BenchmarkE1SPInterfaceSession measures a full Fig 5.3 control
// session (connect, report/add/report/delete/report) over the
// simulated telnet path.
func BenchmarkE1SPInterfaceSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Seed: int64(i + 1)})
		sys.MustCommand("load tcp")
		sys.MustCommand("load rdrop")
		key := fmt.Sprintf("%v 7 %v 1169", core.WiredAddr, core.MobileAddr)
		conn, err := sys.WiredTCP.Connect(core.ProxyCtrlAddr, 12000)
		if err != nil {
			b.Fatal(err)
		}
		var out strings.Builder
		conn.OnData = func(p []byte) { out.Write(p) }
		conn.OnEstablished = func() {
			conn.Write([]byte("report\nadd rdrop " + key + " 50\nreport\ndelete rdrop " + key + "\nreport\n"))
		}
		sys.Sched.RunFor(3 * time.Second)
		if !strings.Contains(out.String(), "rdrop") {
			b.Fatalf("session output: %q", out.String())
		}
	}
}

// BenchmarkE2EEMRoundTrip measures one EEM register + periodic update
// delivery over the simulated network (Fig 6.2's workflow).
func BenchmarkE2EEMRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Seed: int64(i + 1), WithUser: true, EEMInterval: 100 * time.Millisecond})
		client := eem.NewComma(eem.SimDialer(sys.UserTCP))
		id := eem.ID{Var: "sysUpTime", Server: "11.11.9.1"}
		if err := client.Register(id, eem.Attr{Lower: eem.LongValue(0), Op: eem.GTE}); err != nil {
			b.Fatal(err)
		}
		sys.Sched.RunFor(time.Second)
		if _, ok := client.GetValue(id); !ok {
			b.Fatal("no update arrived")
		}
	}
}

// BenchmarkE4TTSFDrop reproduces the Fig 8.3 scenario: a 3 KB stream
// with one segment dropped under the TTSF.
func BenchmarkE4TTSFDrop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := transferOnce(b, core.Config{Seed: int64(i + 1)},
			[]string{"load tcp", "load ttsf", "load rdrop", "load launcher",
				launcherCmd("tcp ttsf rdrop:30")}, nil, 30_000, false)
		if res.Client.State() != tcp.StateClosed && res.Client.State() != tcp.StateTimeWait {
			b.Fatalf("sender did not complete: %v", res.Client.State())
		}
	}
}

// BenchmarkE5Compression is the Fig 8.4 double-proxy compression
// pipeline over 120 KB of text.
func BenchmarkE5Compression(b *testing.B) {
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 120_000/45+1)[:120_000]
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Seed: int64(i + 1), DoubleProxy: true,
			Wireless: netsim.LinkConfig{Bandwidth: 1e6, Delay: 20 * time.Millisecond}})
		for _, c := range []string{"load tcp", "load ttsf", "load comp", "load launcher",
			launcherCmd("tcp ttsf comp:6")} {
			sys.MustCommand(c)
		}
		for _, c := range []string{"load tcp", "load ttsf", "load decomp", "load launcher",
			launcherCmd("tcp ttsf decomp")} {
			sys.MustCommandB(c)
		}
		res, err := sys.Transfer(text, 7, 5001, 300*time.Second)
		if err != nil || !bytes.Equal(res.Received, text) {
			b.Fatalf("compression pipeline failed: %v (%d bytes)", err, len(res.Received))
		}
	}
}

// BenchmarkSnoopVsPlainTCP is E7 at the 10% loss point.
func BenchmarkSnoopVsPlainTCP(b *testing.B) {
	run := func(b *testing.B, services []string) {
		b.SetBytes(100_000)
		for i := 0; i < b.N; i++ {
			transferOnce(b, core.Config{
				Seed: int64(i + 1),
				TCP:  tcp.Config{RcvWnd: 16384},
				Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 25 * time.Millisecond,
					Loss: netsim.Bernoulli{P: 0.10}, QueueLen: 200},
			}, services, nil, 100_000, true)
		}
	}
	b.Run("plain", func(b *testing.B) {
		run(b, []string{"load tcp", "load launcher", launcherCmd("tcp")})
	})
	b.Run("snoop", func(b *testing.B) {
		run(b, []string{"load tcp", "load snoop", "load launcher", launcherCmd("tcp snoop")})
	})
}

// BenchmarkWsizePriority is E8 at the 2048-byte cap point.
func BenchmarkWsizePriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Seed: int64(i + 1),
			Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond}})
		sys.MustCommand("load tcp")
		sys.MustCommand("load wsize")
		sys.MustCommand(fmt.Sprintf("add wsize 0.0.0.0 0 %v 5002 cap 2048", core.MobileAddr))
		sys.MustCommand(fmt.Sprintf("add tcp 0.0.0.0 0 %v 0", core.MobileAddr))
		var hi, lo int
		sys.MobileTCP.Listen(5001, func(c *tcp.Conn) { c.OnData = func(p []byte) { hi += len(p) } })
		sys.MobileTCP.Listen(5002, func(c *tcp.Conn) { c.OnData = func(p []byte) { lo += len(p) } })
		big := pattern(4_000_000)
		c1, _ := sys.WiredTCP.Connect(core.MobileAddr, 5001)
		c1.OnEstablished = func() { c1.Write(big) }
		c2, _ := sys.WiredTCP.Connect(core.MobileAddr, 5002)
		c2.OnEstablished = func() { c2.Write(big) }
		sys.Sched.RunFor(10 * time.Second)
		if hi < 2*lo {
			b.Fatalf("prioritization failed: hi=%d lo=%d", hi, lo)
		}
	}
}

// BenchmarkZWSM is E9: with/without ZWSM across a disconnection.
func BenchmarkZWSM(b *testing.B) {
	run := func(b *testing.B, withZWSM bool) {
		for i := 0; i < b.N; i++ {
			sys := core.NewSystem(core.Config{Seed: int64(i + 1),
				Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond}})
			sys.MustCommand("load tcp")
			sys.MustCommand("load launcher")
			if withZWSM {
				sys.MustCommand("load wsize")
				sys.MustCommand(launcherCmd("tcp wsize:zwsm:300"))
			} else {
				sys.MustCommand(launcherCmd("tcp"))
			}
			rcvd := 0
			sys.MobileTCP.Listen(5001, func(c *tcp.Conn) { c.OnData = func(p []byte) { rcvd += len(p) } })
			client, _ := sys.WiredTCP.ConnectFrom(7, core.MobileAddr, 5001)
			client.OnEstablished = func() { client.Write(pattern(20_000)) }
			sys.Sched.RunFor(2 * time.Second)
			sys.Wireless.SetDown(true)
			sys.Sched.RunFor(time.Second)
			client.Write(pattern(20_000))
			sys.Sched.RunFor(9 * time.Second)
			sys.Wireless.SetDown(false)
			sys.Sched.RunFor(60 * time.Second)
			if rcvd != 40_000 {
				b.Fatalf("burst lost across disconnection: %d", rcvd)
			}
			st := client.Stats()
			if withZWSM && st.ZeroWindowSeen == 0 {
				b.Fatal("zwsm never stalled the sender")
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("zwsm", func(b *testing.B) { run(b, true) })
}

// BenchmarkRdrop is E10 at the 50% drop point.
func BenchmarkRdrop(b *testing.B) {
	b.SetBytes(100_000)
	for i := 0; i < b.N; i++ {
		res := transferOnce(b, core.Config{Seed: int64(i + 1),
			Wireless: netsim.LinkConfig{Bandwidth: 5e6, Delay: 10 * time.Millisecond}},
			[]string{"load tcp", "load ttsf", "load rdrop", "load launcher",
				launcherCmd("tcp ttsf rdrop:50")}, nil, 100_000, false)
		if res.Client.State() != tcp.StateClosed && res.Client.State() != tcp.StateTimeWait {
			b.Fatalf("sender stuck: %v", res.Client.State())
		}
		if len(res.Received) == 100_000 {
			b.Fatal("drops were not permanent")
		}
	}
}

// BenchmarkCompressionClasses is E11's per-class compression cost at
// the filter level (payload framing only).
func BenchmarkCompressionClasses(b *testing.B) {
	classes := map[string][]byte{
		"text":   bytes.Repeat([]byte("lorem ipsum dolor sit amet "), 55),
		"binary": pattern(1460),
	}
	for name, payload := range classes {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				framed := filters.CompressPayload(payload, 6)
				out, err := filters.DecompressPayload(framed)
				if err != nil || !bytes.Equal(out, payload) {
					b.Fatal("round trip failed")
				}
			}
		})
	}
}

// BenchmarkHierarchicalDiscard is E12's media pipeline with the
// discard filter keeping only the base layer.
func BenchmarkHierarchicalDiscard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Seed: int64(i + 1),
			Wireless: netsim.LinkConfig{Bandwidth: 800e3, Delay: 10 * time.Millisecond, QueueLen: 30}})
		sys.MustCommand("load discard")
		sys.MustCommand(fmt.Sprintf("add discard %v 4000 %v 4001 0", core.WiredAddr, core.MobileAddr))
		delivered := 0
		sys.MobileUDP.Bind(4001, func(_ ip.Addr, _ uint16, p []byte) { delivered++ })
		src := media.NewLayeredSource(4, 300, int64(i+1))
		frames := 0
		var tick func()
		tick = func() {
			for _, f := range src.Next() {
				sys.WiredUDP.Send(4000, core.MobileAddr, 4001, media.MarshalFrame(f))
			}
			frames++
			if frames < 100 {
				sys.Sched.After(40*time.Millisecond, tick)
			}
		}
		sys.Sched.After(0, tick)
		sys.Sched.RunFor(10 * time.Second)
		if delivered != 100 {
			b.Fatalf("base-layer delivery = %d, want 100", delivered)
		}
	}
}

// BenchmarkTranslate is E14's colour→mono conversion cost.
func BenchmarkTranslate(b *testing.B) {
	tiles := media.TestImageTiles(128, 128, 8, 3)
	px := 0
	for _, t := range tiles {
		px += len(t.Pixels)
	}
	b.SetBytes(int64(px))
	for i := 0; i < b.N; i++ {
		for _, t := range tiles {
			mono := media.ToMono(t)
			if mono.Mode != media.ModeMono {
				b.Fatal("not mono")
			}
		}
	}
}

// BenchmarkFilterQueueDepth is E15: packets through the interception
// hook with increasing numbers of stacked filters. The finer-grained
// hot-path benchmarks (parse/remarshal, registry matching, TTSF edit
// map) and the 0 allocs/op gates live in internal/perf.
func BenchmarkFilterQueueDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 4, 8} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			sys := core.NewSystem(core.Config{Seed: 17})
			sys.MustCommand("load tcp")
			key := fmt.Sprintf("%v 7 %v 5001", core.WiredAddr, core.MobileAddr)
			sys.MustCommand("add tcp " + key)
			if depth > 0 {
				sys.MustCommand("load rdrop")
				for i := 0; i < depth; i++ {
					sys.MustCommand(fmt.Sprintf("add rdrop %s 0", key))
				}
			}
			seg := tcp.Segment{SrcPort: 7, DstPort: 5001, Seq: 1, Ack: 1,
				Flags: tcp.FlagACK, Window: 65535, Payload: pattern(1000)}
			h := ip.Header{TTL: 64, Protocol: ip.ProtoTCP, Src: core.WiredAddr, Dst: core.MobileAddr}
			raw, _ := h.Marshal(seg.Marshal(core.WiredAddr, core.MobileAddr))
			hook := sys.ProxyHost.PacketHook()
			in := sys.ProxyHost.Ifaces()[0]
			hook(raw, in) // warm the packet pool and emit list
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hook(raw, in)
			}
		})
	}
}

// BenchmarkMobileIPTunnel is E13's encapsulation path cost.
func BenchmarkMobileIPTunnel(b *testing.B) {
	inner := ip.Header{TTL: 64, Protocol: ip.ProtoTCP,
		Src: ip.MustParseAddr("1.1.1.1"), Dst: ip.MustParseAddr("10.0.0.99")}
	raw, _ := inner.Marshal(pattern(1000))
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		enc, err := ip.Encapsulate(ip.MustParseAddr("10.0.0.254"), ip.MustParseAddr("20.0.0.254"), raw, uint16(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ip.Decapsulate(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPTransferSim measures raw simulator+stack throughput: a
// 1 MB lossless transfer per iteration (the substrate's speed limit).
func BenchmarkTCPTransferSim(b *testing.B) {
	b.SetBytes(1_000_000)
	for i := 0; i < b.N; i++ {
		transferOnce(b, core.Config{Seed: int64(i + 1),
			Wireless: netsim.LinkConfig{Bandwidth: 100e6, Delay: time.Millisecond}},
			nil, nil, 1_000_000, true)
	}
}

// Micro-benchmarks of the wire codecs.
func BenchmarkIPChecksum(b *testing.B) {
	buf := pattern(1500)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		ip.Checksum(buf)
	}
}

func BenchmarkTCPSegmentMarshal(b *testing.B) {
	seg := tcp.Segment{SrcPort: 7, DstPort: 80, Seq: 1, Ack: 1,
		Flags: tcp.FlagACK, Window: 65535, Payload: pattern(1460)}
	src, dst := core.WiredAddr, core.MobileAddr
	b.SetBytes(1460)
	for i := 0; i < b.N; i++ {
		raw := seg.Marshal(src, dst)
		if _, err := tcp.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkITCPRelay is E17's split-connection path: one relayed
// 100 KB transfer per iteration.
func BenchmarkITCPRelay(b *testing.B) {
	b.SetBytes(100_000)
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler(int64(i + 1))
		n := netsim.New(s)
		wired := n.AddNode("wired")
		proxyN := n.AddNode("proxy")
		mobile := n.AddNode("mobile")
		proxyN.Forwarding = true
		wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: 2 * time.Millisecond}
		wiredA := ip.MustParseAddr("11.11.10.99")
		mobileA := ip.MustParseAddr("11.11.10.10")
		lw := n.Connect(wired, wiredA, proxyN, ip.MustParseAddr("11.11.10.1"), wire)
		lm := n.Connect(proxyN, ip.MustParseAddr("11.11.11.1"), mobile, mobileA,
			netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond})
		wired.AddDefaultRoute(lw.IfaceA())
		mobile.AddDefaultRoute(lm.IfaceB())
		proxyN.AddRoute(mobileA.Mask(32), 32, lm.IfaceA())
		wStack := tcp.NewStack(wired, tcp.Config{})
		mStack := tcp.NewStack(mobile, tcp.Config{})
		wired.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { wStack.Deliver(h.Src, h.Dst, p) })
		mobile.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { mStack.Deliver(h.Src, h.Dst, p) })
		if _, err := itcp.New(proxyN, mobileA, []uint16{5001}, tcp.Config{}, tcp.Config{}); err != nil {
			b.Fatal(err)
		}
		rcvd := 0
		mStack.Listen(5001, func(c *tcp.Conn) { c.OnData = func(p []byte) { rcvd += len(p) } })
		client, _ := wStack.Connect(mobileA, 5001)
		client.OnEstablished = func() { client.Write(pattern(100_000)) }
		s.RunFor(60 * time.Second)
		if rcvd != 100_000 {
			b.Fatalf("relayed %d bytes", rcvd)
		}
	}
}

// BenchmarkCacheFilter is E20's proxy-side fetch cache: hit-path cost.
func BenchmarkCacheFilter(b *testing.B) {
	sys := core.NewSystem(core.Config{Seed: 20})
	sys.MustCommand("load cache")
	sys.MustCommand(fmt.Sprintf("add cache %v 6001 %v 6000 64", core.MobileAddr, core.WiredAddr))
	sys.WiredUDP.Bind(6000, func(src ip.Addr, sp uint16, payload []byte) {
		key, _, isReq, ok := filters.DecodeFetch(payload)
		if ok && isReq {
			sys.WiredUDP.Send(6000, src, sp, filters.EncodeFetchResponse(key, pattern(1000)))
		}
	})
	got := 0
	sys.MobileUDP.Bind(6001, func(ip.Addr, uint16, []byte) { got++ })
	// Prime the cache.
	sys.MobileUDP.Send(6001, core.WiredAddr, 6000, filters.EncodeFetchRequest("bench"))
	sys.Sched.RunFor(time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.MobileUDP.Send(6001, core.WiredAddr, 6000, filters.EncodeFetchRequest("bench"))
		sys.Sched.RunFor(200 * time.Millisecond)
	}
	if got < b.N {
		b.Fatalf("answered %d of %d fetches", got, b.N)
	}
}

// BenchmarkInteractiveUnderBulk is E18's latency scenario with the cap.
func BenchmarkInteractiveUnderBulk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Seed: int64(i + 1),
			Wireless: netsim.LinkConfig{Bandwidth: 500e3, Delay: 20 * time.Millisecond, QueueLen: 30}})
		sys.MustCommand("load tcp")
		sys.MustCommand("load wsize")
		sys.MustCommand(fmt.Sprintf("add tcp 0.0.0.0 0 %v 0", core.MobileAddr))
		sys.MustCommand(fmt.Sprintf("add wsize 0.0.0.0 0 %v 5002 cap 1460", core.MobileAddr))
		workload.ServeEcho(sys.MobileTCP, 5001)
		sink := 0
		workload.ServeSink(sys.MobileTCP, 5002, &sink)
		iw, err := workload.StartInteractive(sys.Sched, sys.WiredTCP, core.MobileAddr, 5001,
			250*time.Millisecond, 64)
		if err != nil {
			b.Fatal(err)
		}
		workload.StartBulk(sys.WiredTCP, core.MobileAddr, 5002, 2_000_000)
		sys.Sched.RunFor(10 * time.Second)
		iw.Stop()
		if iw.Mean() > 150*time.Millisecond {
			b.Fatalf("capped latency %v", iw.Mean())
		}
	}
}
