// Handoff: Mobile IP (thesis §2.1) keeping a TCP download alive while
// the mobile moves between two foreign agents. Packets in flight
// during the gap are lost and TCP recovers; the home agent re-tunnels
// to the new care-of address as soon as the mobile re-registers.
package main

import (
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/mobileip"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func main() {
	s := sim.NewScheduler(77)
	n := netsim.New(s)
	corr := n.AddNode("server")
	inet := n.AddNode("internet")
	haN := n.AddNode("home-agent")
	fa1N := n.AddNode("fa1")
	fa2N := n.AddNode("fa2")
	mob := n.AddNode("mobile")
	for _, nd := range []*netsim.Node{inet, haN, fa1N, fa2N} {
		nd.Forwarding = true
	}

	var (
		corrA   = ip.MustParseAddr("1.1.1.1")
		haA     = ip.MustParseAddr("10.0.0.254")
		mobHome = ip.MustParseAddr("10.0.0.99")
		fa1A    = ip.MustParseAddr("20.0.0.254")
		fa2A    = ip.MustParseAddr("30.0.0.254")
	)
	wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: 5 * time.Millisecond}
	wireless := netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond}

	lc := n.Connect(corr, corrA, inet, ip.MustParseAddr("1.1.1.254"), wire)
	lh := n.Connect(inet, ip.MustParseAddr("10.0.1.1"), haN, haA, wire)
	l1 := n.Connect(inet, ip.MustParseAddr("20.0.1.1"), fa1N, fa1A, wire)
	l2 := n.Connect(inet, ip.MustParseAddr("30.0.1.1"), fa2N, fa2A, wire)
	corr.AddDefaultRoute(lc.IfaceA())
	inet.AddRoute(ip.MustParseAddr("10.0.0.0"), 16, lh.IfaceA())
	inet.AddRoute(ip.MustParseAddr("20.0.0.0"), 16, l1.IfaceA())
	inet.AddRoute(ip.MustParseAddr("30.0.0.0"), 16, l2.IfaceA())
	inet.AddRoute(ip.MustParseAddr("1.1.1.0"), 24, lc.IfaceB())
	haN.AddDefaultRoute(lh.IfaceB())
	fa1N.AddDefaultRoute(l1.IfaceB())
	fa2N.AddDefaultRoute(l2.IfaceB())

	_ = mobileip.NewHomeAgent(haN)
	fa1 := mobileip.NewForeignAgent(fa1N, fa1A)
	fa2 := mobileip.NewForeignAgent(fa2N, fa2A)
	m := mobileip.NewMobile(mob, haA, mobHome)
	m.OnRegistered = func(careOf ip.Addr) {
		fmt.Printf("t=%-8v mobile registered via care-of %v\n", s.Now(), careOf)
	}
	fa1.StartAdvertising(300 * time.Millisecond)
	fa2.StartAdvertising(300 * time.Millisecond)

	// Attach the mobile to cell 1.
	cell := n.Connect(fa1N, ip.MustParseAddr("20.0.0.1"), mob, mobHome, wireless)
	mob.AddDefaultRoute(mob.Ifaces()[0])

	// A download from the correspondent to the mobile's home address.
	corrTCP := tcp.NewStack(corr, tcp.Config{})
	mobTCP := tcp.NewStack(mob, tcp.Config{})
	corr.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { corrTCP.Deliver(h.Src, h.Dst, p) })
	mob.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { mobTCP.Deliver(h.Src, h.Dst, p) })

	received := 0
	corrTCP.Listen(80, func(c *tcp.Conn) { c.Write(make([]byte, 1_000_000)) })
	s.RunFor(2 * time.Second) // let registration settle
	client, _ := mobTCP.Connect(corrA, 80)
	client.OnData = func(b []byte) { received += len(b) }

	report := func(when string) {
		fmt.Printf("t=%-8v %-22s received %7d B, sender state %v\n",
			s.Now(), when, received, client.State())
	}
	s.RunFor(3 * time.Second)
	report("mid-download in cell 1")

	// Handoff: leave cell 1, appear in cell 2.
	fmt.Printf("t=%-8v HANDOFF: mobile leaves cell 1\n", s.Now())
	n.Disconnect(cell)
	mob.ClearRoutes()
	s.RunFor(500 * time.Millisecond)
	n.Connect(fa2N, ip.MustParseAddr("30.0.0.1"), mob, mobHome, wireless)
	mob.AddDefaultRoute(mob.Ifaces()[0])
	m.Solicit()
	fmt.Printf("t=%-8v mobile attaches to cell 2, soliciting agents\n", s.Now())

	s.RunFor(3 * time.Second)
	report("after handoff")
	s.RunFor(10 * time.Second)
	report("download continuing")
	fmt.Printf("\nhandoffs: %d, registrations: %d; TCP repaired the gap losses transparently\n",
		m.Handoffs, m.Registrations)
}
