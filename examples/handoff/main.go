// Handoff: Mobile IP (thesis §2.1) keeping a TCP download alive while
// the mobile moves between two foreign agents — and the *services*
// moving with it. Each foreign agent runs a service proxy; the download
// is serviced on FA1 by tcp + ttsf + a window cap, and at handoff the
// stream is live-migrated — filter state included — to FA2's proxy, so
// the proxy follows the mobile instead of servicing a cell the mobile
// has left. Packets in flight during the gap are lost and TCP recovers;
// the home agent re-tunnels to the new care-of address as soon as the
// mobile re-registers, and the re-tunneled packets come up through
// FA2's (now stateful) filters.
//
// The example asserts the migration was real: the payload arrives
// byte-identical (SHA-256), exactly one proxy owns the stream's
// bindings afterwards, and the TTSF byte counters on FA2 continue from
// where FA1 froze them instead of restarting at zero.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataplane"
	"repro/internal/filter"
	"repro/internal/filters"
	"repro/internal/ip"
	"repro/internal/migrate"
	"repro/internal/mobileip"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func main() {
	s := sim.NewScheduler(77)
	n := netsim.New(s)
	corr := n.AddNode("server")
	inet := n.AddNode("internet")
	haN := n.AddNode("home-agent")
	fa1N := n.AddNode("fa1")
	fa2N := n.AddNode("fa2")
	mob := n.AddNode("mobile")
	for _, nd := range []*netsim.Node{inet, haN, fa1N, fa2N} {
		nd.Forwarding = true
	}

	var (
		corrA   = ip.MustParseAddr("1.1.1.1")
		haA     = ip.MustParseAddr("10.0.0.254")
		mobHome = ip.MustParseAddr("10.0.0.99")
		fa1A    = ip.MustParseAddr("20.0.0.254")
		fa2A    = ip.MustParseAddr("30.0.0.254")
	)
	wire := netsim.LinkConfig{Bandwidth: 100e6, Delay: 5 * time.Millisecond}
	wireless := netsim.LinkConfig{Bandwidth: 2e6, Delay: 10 * time.Millisecond}

	lc := n.Connect(corr, corrA, inet, ip.MustParseAddr("1.1.1.254"), wire)
	lh := n.Connect(inet, ip.MustParseAddr("10.0.1.1"), haN, haA, wire)
	l1 := n.Connect(inet, ip.MustParseAddr("20.0.1.1"), fa1N, fa1A, wire)
	l2 := n.Connect(inet, ip.MustParseAddr("30.0.1.1"), fa2N, fa2A, wire)
	corr.AddDefaultRoute(lc.IfaceA())
	inet.AddRoute(ip.MustParseAddr("10.0.0.0"), 16, lh.IfaceA())
	inet.AddRoute(ip.MustParseAddr("20.0.0.0"), 16, l1.IfaceA())
	inet.AddRoute(ip.MustParseAddr("30.0.0.0"), 16, l2.IfaceA())
	inet.AddRoute(ip.MustParseAddr("1.1.1.0"), 24, lc.IfaceB())
	haN.AddDefaultRoute(lh.IfaceB())
	fa1N.AddDefaultRoute(l1.IfaceB())
	fa2N.AddDefaultRoute(l2.IfaceB())

	_ = mobileip.NewHomeAgent(haN)
	fa1 := mobileip.NewForeignAgent(fa1N, fa1A)
	fa2 := mobileip.NewForeignAgent(fa2N, fa2A)
	m := mobileip.NewMobile(mob, haA, mobHome)
	m.OnRegistered = func(careOf ip.Addr) {
		fmt.Printf("t=%-8v mobile registered via care-of %v\n", s.Now(), careOf)
	}
	fa1.StartAdvertising(300 * time.Millisecond)
	fa2.StartAdvertising(300 * time.Millisecond)

	// A service proxy on each foreign agent: decapsulated tunnel traffic
	// and forwarded return traffic both pass its filters.
	bus := obs.NewBus(s, 4096)
	metrics := obs.NewRegistry()
	newPlane := func(nd *netsim.Node) *dataplane.Plane {
		cat := filter.NewCatalog()
		filters.RegisterAll(cat)
		pl := dataplane.NewInline(nd, cat, 1)
		pl.SetObs(bus, metrics)
		return pl
	}
	pl1, pl2 := newPlane(fa1N), newPlane(fa2N)

	// Migration managers on both agents, talking over the wired segment
	// (the care-of addresses are mutually routable through the internet
	// node regardless of where the mobile is attached).
	newCtrl := func(nd *netsim.Node) *tcp.Stack {
		st := tcp.NewStack(nd, tcp.Config{})
		nd.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) {
			st.Deliver(h.Src, h.Dst, p)
		})
		return st
	}
	mgr1 := migrate.NewManager(migrate.Config{
		Name: "fa1", ID: 1, Sched: s, Plane: pl1, Stack: newCtrl(fa1N), Bus: bus,
	})
	mgr2 := migrate.NewManager(migrate.Config{
		Name: "fa2", ID: 2, Sched: s, Plane: pl2, Stack: newCtrl(fa2N), Bus: bus,
	})
	for _, mg := range []*migrate.Manager{mgr1, mgr2} {
		if err := mg.Serve(); err != nil {
			fmt.Println("FAIL: migrate serve:", err)
			os.Exit(1)
		}
	}
	pl1.RegisterCommand("migrate", mgr1.Command)
	pl2.RegisterCommand("migrate", mgr2.Command)

	mustCmd := func(pl *dataplane.Plane, line string) string {
		out := pl.Command(line)
		if strings.HasPrefix(out, "error") {
			fmt.Printf("FAIL: command %q: %s", line, out)
			os.Exit(1)
		}
		return out
	}

	// Service the download on FA1: passive tcp tracking, the TTSF
	// sequence-translation filter, and a receive-window cap — the filters
	// whose state must survive the move to FA2.
	const clientPort = 5000
	key := filter.Key{SrcIP: corrA, SrcPort: 80, DstIP: mobHome, DstPort: clientPort}
	keyStr := fmt.Sprintf("%v %d %v %d", corrA, 80, mobHome, clientPort)
	for _, c := range []string{
		"load tcp", "load ttsf", "load wsize",
		"add tcp " + keyStr, "add ttsf " + keyStr, "add wsize " + keyStr + " cap 16000",
	} {
		mustCmd(pl1, c)
	}

	// A download from the correspondent to the mobile's home address.
	corrTCP := tcp.NewStack(corr, tcp.Config{})
	mobTCP := tcp.NewStack(mob, tcp.Config{})
	corr.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { corrTCP.Deliver(h.Src, h.Dst, p) })
	mob.RegisterProto(ip.ProtoTCP, func(h ip.Header, p, raw []byte, in *netsim.Iface) { mobTCP.Deliver(h.Src, h.Dst, p) })

	payload := make([]byte, 1_000_000)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	wantSum := sha256.Sum256(payload)

	// Attach the mobile to cell 1.
	cell := n.Connect(fa1N, ip.MustParseAddr("20.0.0.1"), mob, mobHome, wireless)
	mob.AddDefaultRoute(mob.Ifaces()[0])

	var received []byte
	corrTCP.Listen(80, func(c *tcp.Conn) { c.Write(payload); c.Close() })
	s.RunFor(2 * time.Second) // let registration settle
	client, err := mobTCP.ConnectFrom(clientPort, corrA, 80)
	if err != nil {
		fmt.Println("FAIL: connect:", err)
		os.Exit(1)
	}
	client.OnData = func(b []byte) { received = append(received, b...) }

	report := func(when string) {
		fmt.Printf("t=%-8v %-22s received %7d B, sender state %v\n",
			s.Now(), when, len(received), client.State())
	}

	// Sample the TTSF instance continuously: its byte counters prove
	// whether the state moved or restarted. The last sample before the
	// post-download teardown is the one the assertions use.
	var preBytes, postBytes int64
	var postOK bool
	var probe func()
	probe = func() {
		if st, ok := filters.TTSFStatsFor(key); ok {
			postBytes, postOK = st.BytesIn, true
		}
		s.After(50*time.Millisecond, probe)
	}
	s.After(0, probe)

	s.RunFor(3 * time.Second)
	report("mid-download in cell 1")

	// Handoff, services first: freeze the stream on FA1 and hand its
	// filters — state included — to FA2, then move the mobile.
	if st, ok := filters.TTSFStatsFor(key); ok {
		preBytes = st.BytesIn
	}
	fmt.Printf("t=%-8v MIGRATE: %s\n", s.Now(),
		strings.TrimSpace(mustCmd(pl1, fmt.Sprintf("migrate %s %v", keyStr, fa2A))))
	s.RunFor(200 * time.Millisecond)

	fmt.Printf("t=%-8v HANDOFF: mobile leaves cell 1\n", s.Now())
	n.Disconnect(cell)
	mob.ClearRoutes()
	s.RunFor(500 * time.Millisecond)
	n.Connect(fa2N, ip.MustParseAddr("30.0.0.1"), mob, mobHome, wireless)
	mob.AddDefaultRoute(mob.Ifaces()[0])
	m.Solicit()
	fmt.Printf("t=%-8v mobile attaches to cell 2, soliciting agents\n", s.Now())

	s.RunFor(3 * time.Second)
	report("after handoff")
	s.RunFor(10 * time.Second)
	report("download complete")

	// The migration must have been real, not cosmetic.
	fail := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fail = true
			fmt.Printf("FAIL: "+format+"\n", args...)
		}
	}
	check(len(received) == len(payload) && sha256.Sum256(received) == wantSum,
		"payload corrupt: received %d of %d bytes", len(received), len(payload))
	b1, b2 := pl1.StreamBindings(key), pl2.StreamBindings(key)
	check(b1 == 0 && b2 == 3,
		"ownership invariant violated: FA1 holds %d bindings, FA2 holds %d (want 0 and 3)", b1, b2)
	a, c, r, ab := mgr1.Counters()
	check(a == 1 && c == 1 && r == 0 && ab == 0,
		"FA1 migration outcome attempts=%d completed=%d resumed=%d aborted=%d, want one clean completion", a, c, r, ab)
	check(preBytes > 0, "ttsf saw no bytes before the freeze")
	check(postOK && postBytes >= preBytes,
		"ttsf state restarted instead of migrating: pre=%d post=%d ok=%v", preBytes, postBytes, postOK)
	if fail {
		os.Exit(1)
	}

	fmt.Printf("\nhandoffs: %d, registrations: %d; stream migrated FA1->FA2 (bindings %d->%d, ttsf bytes %d->%d), payload sha256 OK\n",
		m.Handoffs, m.Registrations, b1, b2, preBytes, postBytes)
}
