// Compression: transparent stream compression over a slow wireless
// link, the thesis §8.1.6 service deployed double-proxy (§10.2.4).
// Neither endpoint knows anything happened: the comp filter shrinks
// segment payloads at the base station, the TTSF keeps both sequence
// spaces consistent, and the decomp filter restores the bytes on the
// far side.
//
// The example transfers the same document with and without the
// service and compares wireless bytes and transfer time.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

func run(withCompression bool) (wirelessBytes int64, elapsed time.Duration, intact bool) {
	sys := core.NewSystem(core.Config{
		DoubleProxy: true,
		Wireless:    netsim.LinkConfig{Bandwidth: 500e3, Delay: 30 * time.Millisecond},
	})
	sys.MustCommand("load tcp")
	sys.MustCommandB("load tcp")
	if withCompression {
		for _, c := range []string{"load ttsf", "load comp", "load launcher",
			fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf comp:6", core.WiredAddr, core.MobileAddr)} {
			sys.MustCommand(c)
		}
		for _, c := range []string{"load ttsf", "load decomp", "load launcher",
			fmt.Sprintf("add launcher %v 0 %v 0 tcp ttsf decomp", core.WiredAddr, core.MobileAddr)} {
			sys.MustCommandB(c)
		}
	} else {
		sys.MustCommand("load launcher")
		sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 tcp", core.WiredAddr, core.MobileAddr))
	}

	doc := bytes.Repeat([]byte("Proxy architectures provide a solution to both protocol- and application-level problems. "), 2000)
	res, err := sys.Transfer(doc, 7, 5001, 30*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	return sys.Wireless.StatsAB().Bytes, res.Elapsed, bytes.Equal(res.Received, doc)
}

func main() {
	plainBytes, plainTime, ok1 := run(false)
	compBytes, compTime, ok2 := run(true)
	fmt.Println("180 KB document over a 500 kb/s wireless link:")
	fmt.Printf("  without service: %7d B on the air, %8v, intact=%v\n", plainBytes, plainTime, ok1)
	fmt.Printf("  with comp+ttsf:  %7d B on the air, %8v, intact=%v\n", compBytes, compTime, ok2)
	fmt.Printf("  wireless bytes saved: %.0f%%, speedup: %.1fx\n",
		100*(1-float64(compBytes)/float64(plainBytes)),
		plainTime.Seconds()/compTime.Seconds())
	fmt.Println("\nneither endpoint was modified or even informed — the filters are controlled")
	fmt.Println("entirely at the proxy (add/delete via the SP interface or the Kati shell).")
}
