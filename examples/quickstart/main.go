// Quickstart: build a Comma deployment, apply the tcp bookkeeping
// filter to all mobile-bound streams, and push a file-sized transfer
// through the proxy. Shows the minimal public-API workflow:
//
//  1. core.NewSystem — simulated wired/wireless topology with the
//     Service Proxy and EEM already attached;
//  2. proxy commands (load / add) — exactly the thesis's §5.3 command
//     set;
//  3. Transfer — drive traffic and read the result.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	sys := core.NewSystem(core.Config{})

	// The launcher applies the tcp filter to every new stream headed
	// for the mobile (thesis Fig 5.3's wild-card key).
	sys.MustCommand("load tcp")
	sys.MustCommand("load launcher")
	sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 tcp",
		core.WiredAddr, core.MobileAddr))

	// Run the first 150 ms of the transfer, inspect the proxy while the
	// stream is live, then let the simulation finish it.
	payload := bytes.Repeat([]byte("hello, mobile world! "), 5000)
	res, err := sys.Transfer(payload, 7, 5001, 150*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proxy report mid-transfer (thesis §5.3 'report' command):")
	fmt.Print(sys.Proxy.Command("report"))
	fmt.Println("\nproxy stream accounting:")
	fmt.Print(sys.Proxy.Command("streams"))

	// Let the transfer finish.
	sys.Sched.RunFor(2 * time.Minute)
	fmt.Printf("\ntransferred %d bytes over the wireless link (virtual time %v+)\n",
		len(res.Received), res.Elapsed)
	fmt.Printf("intact: %v\n", bytes.Equal(res.Received, payload))
}
