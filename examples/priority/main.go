// Priority: BSSP-style stream prioritization (thesis §8.2.2) applied
// by a third party at run time. Two bulk downloads share the wireless
// link; midway, an operator uses the SP command interface to cap the
// background stream's advertised window, shifting bandwidth to the
// interactive one — without touching either application.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

func main() {
	sys := core.NewSystem(core.Config{
		Wireless: netsim.LinkConfig{Bandwidth: 2e6, Delay: 20 * time.Millisecond},
	})
	sys.MustCommand("load tcp")
	sys.MustCommand("load wsize")
	sys.MustCommand(fmt.Sprintf("add tcp 0.0.0.0 0 %v 0", core.MobileAddr))

	var fg, bg int
	sys.MobileTCP.Listen(5001, func(c *tcp.Conn) { c.OnData = func(b []byte) { fg += len(b) } })
	sys.MobileTCP.Listen(5002, func(c *tcp.Conn) { c.OnData = func(b []byte) { bg += len(b) } })
	big := make([]byte, 16_000_000)
	cFg, _ := sys.WiredTCP.Connect(core.MobileAddr, 5001)
	cFg.OnEstablished = func() { cFg.Write(big) }
	cBg, _ := sys.WiredTCP.Connect(core.MobileAddr, 5002)
	cBg.OnEstablished = func() { cBg.Write(big) }

	sample := func(phase string, lastFg, lastBg int) (int, int) {
		fmt.Printf("%-28s foreground %5d KB/s   background %5d KB/s\n",
			phase, (fg-lastFg)/10_000, (bg-lastBg)/10_000)
		return fg, bg
	}

	fmt.Println("two bulk streams share a 2 Mb/s wireless link (rates per 10 s window):")
	sys.Sched.RunFor(10 * time.Second)
	lf, lb := sample("fair sharing:", 0, 0)

	// Operator decision: background stream (port 5002) is low priority.
	fmt.Println("\noperator: add wsize 0.0.0.0 0 " + core.MobileAddr.String() + " 5002 cap 2048")
	sys.MustCommand(fmt.Sprintf("add wsize 0.0.0.0 0 %v 5002 cap 2048", core.MobileAddr))
	sys.Sched.RunFor(10 * time.Second)
	lf, lb = sample("after window cap:", lf, lb)

	// And release it again.
	fmt.Println("\noperator: delete wsize 0.0.0.0 0 " + core.MobileAddr.String() + " 5002")
	sys.MustCommand(fmt.Sprintf("delete wsize 0.0.0.0 0 %v 5002", core.MobileAddr))
	sys.Sched.RunFor(10 * time.Second)
	sample("after release:", lf, lb)

	fmt.Println("\nthe applications never saw anything but a smaller receive window —")
	fmt.Println("end-to-end semantics preserved, control entirely third-party.")
}
