#!/bin/sh
# Throughput regression gate for the batched sharded data plane.
#
# Runs a fresh short BenchmarkShardedIntercept at 1 and 8 shards and
# enforces, in order of portability:
#
#   1. No-collapse (every host): 8-shard aggregate throughput must stay
#      >= 70% of single-shard. Before batching, per-packet cross-thread
#      wakeups made 8 shards run at ~0.45x of one shard on a single
#      core; this gate keeps that collapse from coming back anywhere.
#   2. Linear scaling (hosts with >= 8 CPUs only): 8 shards must beat
#      one shard by > 4x. Unattainable on fewer cores, so it is gated
#      on nproc.
#   3. Absolute floor (same-host only): if this host has the same CPU
#      count as the one that recorded BENCH_shard.json, the fresh
#      8-shard rate must not drop below the committed floor_8shard
#      (recorded at 70% of the measured rate, so normal run-to-run
#      noise passes).
set -e
cd "$(dirname "$0")/.."

CPUS=$(nproc 2>/dev/null || echo 1)
OUT=/tmp/bench_gate.txt

go test ./internal/perf -run '^$' -bench 'BenchmarkShardedIntercept$' \
	-cpu 1,8 -count=1 -benchtime 1s | tee "$OUT"

rate() {
	awk -v want="$1" '$1 == want {
		for (i = 2; i <= NF; i++) if ($i == "pkts/s") print $(i-1)
	}' "$OUT"
}
R1=$(rate BenchmarkShardedIntercept)
R8=$(rate BenchmarkShardedIntercept-8)
if [ -z "$R1" ] || [ -z "$R8" ]; then
	echo "bench-gate: FAIL (could not parse pkts/s from benchmark output)"
	exit 1
fi
echo "bench-gate: host_cpus=$CPUS 1-shard=$R1 pkts/s 8-shard=$R8 pkts/s"

# Gate 1: no collapse, anywhere.
awk -v r1="$R1" -v r8="$R8" 'BEGIN {
	if (r8 < 0.7 * r1) {
		printf "bench-gate: FAIL (8-shard %d < 70%% of 1-shard %d: shard handoff collapse)\n", r8, r1
		exit 1
	}
	printf "bench-gate: no-collapse OK (8v1 scale %.2f)\n", r8 / r1
}' || exit 1

# Gate 2: linear scaling, only where the cores exist to show it.
if [ "$CPUS" -ge 8 ]; then
	awk -v r1="$R1" -v r8="$R8" 'BEGIN {
		if (r8 <= 4 * r1) {
			printf "bench-gate: FAIL (8-shard %d <= 4x 1-shard %d on an 8-core-class host)\n", r8, r1
			exit 1
		}
		printf "bench-gate: linear-scaling OK (8v1 scale %.2f > 4)\n", r8 / r1
	}' || exit 1
else
	echo "bench-gate: linear-scaling gate skipped (host has $CPUS CPUs, needs >= 8)"
fi

# Gate 3: absolute floor, only against a record from an equivalent host.
if [ -f BENCH_shard.json ]; then
	REC_CPUS=$(sed -n 's/.*"host_cpus": *\([0-9][0-9]*\).*/\1/p' BENCH_shard.json)
	FLOOR=$(sed -n 's/.*"floor_8shard": *\([0-9][0-9]*\).*/\1/p' BENCH_shard.json)
	if [ -n "$REC_CPUS" ] && [ -n "$FLOOR" ] && [ "$REC_CPUS" = "$CPUS" ]; then
		awk -v r8="$R8" -v floor="$FLOOR" 'BEGIN {
			if (r8 < floor) {
				printf "bench-gate: FAIL (8-shard %d pkts/s below committed floor %d)\n", r8, floor
				exit 1
			}
			printf "bench-gate: floor OK (%d >= %d)\n", r8, floor
		}' || exit 1
	else
		echo "bench-gate: floor gate skipped (recorded on host_cpus=${REC_CPUS:-?}, this host has $CPUS)"
	fi
else
	echo "bench-gate: floor gate skipped (no BENCH_shard.json committed)"
fi

echo "bench-gate: OK"
