#!/bin/sh
# Flat-lookup regression gate for the compiled registry classifier.
#
# Runs a fresh BenchmarkRegistryLookup across registry sizes and
# enforces, on every host:
#
#   1. Zero allocations per lookup at every size. The classifier
#      answers from immutable tables; any allocation on the lookup
#      path is a regression toward per-key match state (the deleted
#      negative cache started exactly that way).
#   2. Flatness: ns/lookup at 8000 rules must stay within 1.25x of
#      ns/lookup at 1 rule. The compiled program costs two map probes,
#      two port-table reads, and three cross-table reads regardless of
#      rule count; a ratio above 1.25 means something rule-linear crept
#      back into the hot path. Each size is measured -count=3 and the
#      per-size minimum is compared, so scheduler noise (which at ~17ns
#      per op swamps single samples) cannot flake the gate.
set -e
cd "$(dirname "$0")/.."

OUT=/tmp/bench_registry_gate.txt

go test ./internal/perf -run '^$' -bench 'BenchmarkRegistryLookup$' \
	-benchmem -count=3 -benchtime 1s | tee "$OUT"

# min_metric SIZE UNIT: minimum value of UNIT across the runs of
# BenchmarkRegistryLookup/rules-SIZE.
min_metric() {
	awk -v size="$1" -v unit="$2" '
	$1 ~ ("^BenchmarkRegistryLookup/rules-" size "(-[0-9]+)?$") {
		for (i = 2; i <= NF; i++) if ($i == unit && (best == "" || $(i-1) < best)) best = $(i-1)
	}
	END { print best }' "$OUT"
}

for size in 1 64 1000 8000; do
	NS=$(min_metric "$size" "ns/lookup")
	ALLOCS=$(min_metric "$size" "allocs/op")
	if [ -z "$NS" ] || [ -z "$ALLOCS" ]; then
		echo "bench-registry-gate: FAIL (could not parse rules-$size from benchmark output)"
		exit 1
	fi
	if [ "$ALLOCS" != "0" ]; then
		echo "bench-registry-gate: FAIL (rules-$size lookup allocates $ALLOCS/op, want 0)"
		exit 1
	fi
	echo "bench-registry-gate: rules-$size $NS ns/lookup, 0 allocs/op"
done

NS1=$(min_metric 1 "ns/lookup")
NS8K=$(min_metric 8000 "ns/lookup")
awk -v n1="$NS1" -v n8k="$NS8K" 'BEGIN {
	if (n8k > 1.25 * n1) {
		printf "bench-registry-gate: FAIL (8000-rule lookup %.2fns > 1.25x 1-rule %.2fns: rule-linear cost crept back)\n", n8k, n1
		exit 1
	}
	printf "bench-registry-gate: flatness OK (8kv1 ratio %.2f <= 1.25)\n", n8k / n1
}' || exit 1

echo "bench-registry-gate: OK"
