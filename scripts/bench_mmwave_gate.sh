#!/bin/sh
# Regression gate for the 5G mmWave scenario.
#
# Runs a fresh `wsim -mmwave -seed 7` and enforces:
#
#   1. Acceptance bars (every host): the managed (mwin + LTE-shed) leg
#      must move data at >= 1.5x the no-proxy baseline, and both proxy
#      legs must keep the mmWave transmit queue's high-water mark below
#      the baseline's. The scenario asserts these itself — a non-zero
#      exit fails the gate — but the bars are re-checked here from the
#      RESULT line so the gate does not depend on the binary's exit
#      path alone.
#   2. Exact record (when BENCH_mmwave.json is committed): the scenario
#      runs on virtual time, so the same seed must reproduce the
#      committed numbers exactly — any drift means link, TCP, filter,
#      or policy behavior changed and the record must be re-cut
#      deliberately (make bench-mmwave).
set -e
cd "$(dirname "$0")/.."

OUT=/tmp/bench_mmwave_gate.txt
go run ./cmd/wsim -mmwave -seed 7 | tee "$OUT"

LINE=$(grep '^RESULT mmwave ' "$OUT" || true)
if [ -z "$LINE" ]; then
	echo "bench-mmwave-gate: FAIL (no RESULT line in scenario output)"
	exit 1
fi

field() {
	echo "$LINE" | tr ' ' '\n' | sed -n "s/^$1=//p"
}
BASE_BPS=$(field baseline_bps)
MANAGED_BPS=$(field managed_bps)
BASE_PEAK=$(field baseline_peak)
MWIN_PEAK=$(field mwin_peak)
MANAGED_PEAK=$(field managed_peak)

awk -v bb="$BASE_BPS" -v mb="$MANAGED_BPS" -v bp="$BASE_PEAK" \
	-v wp="$MWIN_PEAK" -v gp="$MANAGED_PEAK" 'BEGIN {
	if (mb < 1.5 * bb) {
		printf "bench-mmwave-gate: FAIL (managed %d b/s < 1.5x baseline %d b/s)\n", mb, bb
		exit 1
	}
	if (wp >= bp || gp >= bp) {
		printf "bench-mmwave-gate: FAIL (peak queue mwin=%d managed=%d not below baseline=%d)\n", wp, gp, bp
		exit 1
	}
	printf "bench-mmwave-gate: bars OK (speedup %.2f, peaks %d/%d vs %d)\n", mb / bb, wp, gp, bp
}' || exit 1

if [ -f BENCH_mmwave.json ]; then
	for key in baseline_bps mwin_bps managed_bps baseline_peak mwin_peak managed_peak; do
		REC=$(sed -n "s/.*\"$key\": *\([0-9][0-9]*\).*/\1/p" BENCH_mmwave.json)
		GOT=$(field $key)
		if [ -n "$REC" ] && [ "$REC" != "$GOT" ]; then
			echo "bench-mmwave-gate: FAIL ($key=$GOT differs from committed $REC; re-cut with 'make bench-mmwave' if intended)"
			exit 1
		fi
	done
	echo "bench-mmwave-gate: record OK (matches BENCH_mmwave.json exactly)"
else
	echo "bench-mmwave-gate: record gate skipped (no BENCH_mmwave.json committed)"
fi

echo "bench-mmwave-gate: OK"
