# Verification entry points. `make verify` is the gate a change must
# pass before merging; the finer-grained targets exist for focused runs.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fmt-check fuzz bench bench-shard bench-gate bench-registry bench-registry-gate bench-mmwave bench-mmwave-gate obs-determinism chaos adapt flows-determinism migrate-determinism mmwave-determinism verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole suite under the race detector: the sim.Realtime driver and
# the daemons are the only concurrent components, but everything runs.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Native fuzz targets, each for $(FUZZTIME): codec round-trip
# stability and no-panic over the packet parsers.
fuzz:
	$(GO) test ./internal/ip -fuzz FuzzIPParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tcp -fuzz FuzzTCPParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/filter -fuzz FuzzFilterParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/filter -fuzz FuzzSteerKey -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dataplane -fuzz FuzzSteer -fuzztime $(FUZZTIME)
	$(GO) test ./internal/classifier -fuzz FuzzClassifierParity -fuzztime $(FUZZTIME)
	$(GO) test ./internal/migrate -fuzz FuzzMigrationSnapshotDecode -fuzztime $(FUZZTIME)

# Hot-path micro-benchmarks, benchstat-ready (10 samples each).
bench:
	./bench.sh

# Sharded data-plane scaling curve: BenchmarkShardedIntercept sizes its
# shard count from GOMAXPROCS, so sweeping -cpu 1,2,4,8 measures the
# aggregate interception rate at 1/2/4/8 shards through the batched
# pipeline. The curve — plus the host CPU count it was measured on, the
# batch size, the 8-vs-1 scaling ratio, and the regression floor
# bench-gate enforces — lands in BENCH_shard.json.
bench-shard:
	$(GO) test ./internal/perf -run '^$$' -bench 'BenchmarkShardedIntercept$$' \
		-benchmem -cpu 1,2,4,8 -count=1 | tee /tmp/bench_shard.txt
	@awk -v cpus=$$(nproc 2>/dev/null || echo 1) -v batch=64 \
	'BEGIN { split("1 2 4 8", order, " ") } \
	$$1 ~ /^BenchmarkShardedIntercept(-[0-9]+)?$$/ { \
		n = split($$1, name, "-"); sc = (n > 1) ? name[n] : 1; \
		for (i = 2; i <= NF; i++) if ($$i == "pkts/s") rate[sc] = $$(i-1); \
	} \
	END { \
		printf "{\n  \"benchmark\": \"BenchmarkShardedIntercept\",\n  \"metric\": \"pkts/s\",\n"; \
		printf "  \"host_cpus\": %d,\n  \"batch\": %d,\n  \"shards\": {", cpus, batch; \
		sep = ""; \
		for (j = 1; j <= 4; j++) if (order[j] in rate) { \
			printf "%s\n    \"%s\": %d", sep, order[j], rate[order[j]]; sep = ","; \
		} \
		printf "\n  }"; \
		if (("1" in rate) && ("8" in rate) && rate["1"] > 0) { \
			printf ",\n  \"scale_8v1\": %.2f,\n  \"floor_8shard\": %d", \
				rate["8"] / rate["1"], rate["8"] * 0.7; \
		} \
		printf "\n}\n"; \
	}' /tmp/bench_shard.txt > BENCH_shard.json
	@cat BENCH_shard.json

# Registry-classifier curve: ns/lookup against 1/64/1000/8000-rule
# registries (min of 3 runs per size, so scheduler noise at ~17ns/op
# cannot skew the record) plus the short-flow churn lifecycle cost.
# The curve, the host CPU count, the 8k-vs-1 flatness ratio, and the
# churn allocation cost land in BENCH_registry.json.
bench-registry:
	$(GO) test ./internal/perf -run '^$$' \
		-bench 'BenchmarkRegistryLookup$$|BenchmarkRegistryChurn$$' \
		-benchmem -count=3 | tee /tmp/bench_registry.txt
	@awk -v cpus=$$(nproc 2>/dev/null || echo 1) \
	'$$1 ~ /^BenchmarkRegistryLookup\/rules-/ { \
		split($$1, name, "-"); size = name[2]; \
		for (i = 2; i <= NF; i++) \
			if ($$i == "ns/lookup" && (!(size in ns) || $$(i-1) < ns[size])) ns[size] = $$(i-1); \
	} \
	$$1 ~ /^BenchmarkRegistryChurn(-[0-9]+)?$$/ { \
		for (i = 2; i <= NF; i++) { \
			if ($$i == "bytes/flow" && (bpf == "" || $$(i-1) < bpf)) bpf = $$(i-1); \
			if ($$i == "pkts/s" && $$(i-1) > pps) pps = $$(i-1); \
		} \
	} \
	END { \
		printf "{\n  \"benchmark\": \"BenchmarkRegistryLookup\",\n  \"metric\": \"ns/lookup (min of 3)\",\n"; \
		printf "  \"host_cpus\": %d,\n  \"rules\": {", cpus; \
		n = split("1 64 1000 8000", order, " "); sep = ""; \
		for (j = 1; j <= n; j++) if (order[j] in ns) { \
			printf "%s\n    \"%s\": %.2f", sep, order[j], ns[order[j]]; sep = ","; \
		} \
		printf "\n  }"; \
		if (("1" in ns) && ("8000" in ns) && ns["1"] > 0) \
			printf ",\n  \"ratio_8kv1\": %.2f", ns["8000"] / ns["1"]; \
		if (bpf != "") printf ",\n  \"churn_bytes_per_flow\": %d", bpf; \
		if (pps > 0) printf ",\n  \"churn_pkts_per_s\": %d", pps; \
		printf "\n}\n"; \
	}' /tmp/bench_registry.txt > BENCH_registry.json
	@cat BENCH_registry.json

# Flat-lookup regression gate: a fresh run of the classifier benchmark
# checked for zero allocations at every registry size and for O(1)
# scaling (8000-rule lookups within 1.25x of 1-rule).
bench-registry-gate:
	./scripts/bench_registry_gate.sh

# Throughput regression gate: a fresh short run of the batched
# benchmark checked against hard invariants (no shard collapse; linear
# scaling on hosts with the cores for it) and against the committed
# BENCH_shard.json floor when the host matches the one that recorded it.
bench-gate:
	./scripts/bench_gate.sh

# Two separate processes run the observability demo with the same seed;
# their full event logs and metrics snapshots must be byte-identical.
# (TestObsDeterminism covers the in-process variant; this catches
# process-level leaks like map-iteration or address ordering.)
obs-determinism:
	@$(GO) run ./cmd/wsim -events -seed 7 > /tmp/obs-run1.txt
	@$(GO) run ./cmd/wsim -events -seed 7 > /tmp/obs-run2.txt
	@cmp /tmp/obs-run1.txt /tmp/obs-run2.txt && echo "obs-determinism: OK"

# Chaos soak: the fault-injection scenario under the race detector,
# then two separate processes with the same seed whose full outputs
# (per-leg results, event log, metrics) must be byte-identical. The
# scenario itself asserts transfer integrity, filter quarantine, EEM
# client recovery, and control-plane liveness.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/faults
	@$(GO) run ./cmd/wsim -chaos -seed 11 > /tmp/chaos-run1.txt
	@$(GO) run ./cmd/wsim -chaos -seed 11 > /tmp/chaos-run2.txt
	@cmp /tmp/chaos-run1.txt /tmp/chaos-run2.txt && echo "chaos: OK"

# Adaptive-services gate: the policy-engine scenario under the race
# detector, then two separate processes with the same seed whose full
# outputs (per-leg results, policy trace, event log, metrics) must be
# byte-identical. The scenario itself asserts a complete
# load→hold→unload hysteresis cycle on both proxies and checksum-clean
# transfers on every leg.
adapt:
	$(GO) test -race -count=1 ./internal/policy
	$(GO) test -race -count=1 -run 'TestPolicyDeterminism' ./internal/experiments
	@$(GO) run ./cmd/wsim -adapt -seed 13 > /tmp/adapt-run1.txt
	@$(GO) run ./cmd/wsim -adapt -seed 13 > /tmp/adapt-run2.txt
	@cmp /tmp/adapt-run1.txt /tmp/adapt-run2.txt && echo "adapt: OK"

# Flow-analytics gate: the flow-log package and shard-merge property
# under the race detector, then two separate processes running the
# flow-log scenario with the same seed whose full outputs (transfer
# legs, flow aggregates, rendered flows table, policy trace, metrics)
# must be byte-identical. The scenario itself asserts the policy rule
# fires on flow.retrans_ratio during the lossy window and reverts
# after recovery.
flows-determinism:
	$(GO) test -race -count=1 ./internal/flowlog
	$(GO) test -race -count=1 -run 'TestFlowRecordsShardMergeEquivalence' ./internal/dataplane
	$(GO) test -race -count=1 -run 'TestFlowsDeterminism' ./internal/experiments
	@$(GO) run ./cmd/wsim -flows -seed 17 > /tmp/flows-run1.txt
	@$(GO) run ./cmd/wsim -flows -seed 17 > /tmp/flows-run2.txt
	@cmp /tmp/flows-run1.txt /tmp/flows-run2.txt && echo "flows-determinism: OK"

# Stream-migration gate: the migration codec/protocol packages and the
# snapshot round-trip tests under the race detector, then two separate
# processes running the migration scenario with the same seed whose
# full outputs (per-leg outcomes across the fault matrix, migration
# events, metrics) must be byte-identical. The scenario itself asserts
# the ownership invariant — every attempt ends completed on the
# destination XOR resumed on the source — plus payload integrity and
# TTSF state continuity on every leg.
migrate-determinism:
	$(GO) test -race -count=1 ./internal/migrate
	$(GO) test -race -count=1 -run 'TestTTSFSnapshot|TestWSizeCapSnapshot|TestZWSMNotSnapshottable' ./internal/filters
	$(GO) test -race -count=1 -run 'TestExportImport|TestImportQueueCounters|TestMigrate' ./internal/proxy ./internal/experiments
	@$(GO) run ./cmd/wsim -migrate -seed 23 > /tmp/migrate-run1.txt
	@$(GO) run ./cmd/wsim -migrate -seed 23 > /tmp/migrate-run2.txt
	@cmp /tmp/migrate-run1.txt /tmp/migrate-run2.txt && echo "migrate-determinism: OK"

# 5G mmWave gate: the link-shaping and mwin unit/property tests under
# the race detector, then two separate processes running the mmWave
# scenario with the same seed whose full outputs (trace table, per-leg
# goodput/occupancy lines, shed timeline, RESULT summary) must be
# byte-identical. The scenario itself asserts mwin keeps the proxy's
# mmWave buffer below the baseline's and the managed pack moves data at
# >= 1.5x the no-proxy baseline.
mmwave-determinism:
	$(GO) test -race -count=1 -run 'TestShape|TestShaping|TestBlockage|TestTrace|TestNLoS' ./internal/netsim
	$(GO) test -race -count=1 -run 'TestMwin' ./internal/filters
	$(GO) test -race -count=1 -run 'TestMMWaveDeterminism' ./internal/experiments
	@$(GO) run ./cmd/wsim -mmwave -seed 7 > /tmp/mmwave-run1.txt
	@$(GO) run ./cmd/wsim -mmwave -seed 7 > /tmp/mmwave-run2.txt
	@cmp /tmp/mmwave-run1.txt /tmp/mmwave-run2.txt && echo "mmwave-determinism: OK"

# 5G scenario record: run the mmWave scenario and distill its RESULT
# line (per-leg goodput, peak mmWave queue occupancy, speedup) into
# BENCH_mmwave.json. Virtual-time numbers — exact per seed, so the
# record is a stable contract, not a noisy measurement.
bench-mmwave:
	@$(GO) run ./cmd/wsim -mmwave -seed 7 | tee /tmp/bench_mmwave.txt
	@awk '/^RESULT mmwave / { \
		for (i = 3; i <= NF; i++) { split($$i, kv, "="); v[kv[1]] = kv[2]; } \
	} \
	END { \
		printf "{\n  \"scenario\": \"mmwave\",\n  \"seed\": 7,\n"; \
		printf "  \"baseline_bps\": %d,\n  \"mwin_bps\": %d,\n  \"managed_bps\": %d,\n", \
			v["baseline_bps"], v["mwin_bps"], v["managed_bps"]; \
		printf "  \"baseline_peak\": %d,\n  \"mwin_peak\": %d,\n  \"managed_peak\": %d,\n", \
			v["baseline_peak"], v["mwin_peak"], v["managed_peak"]; \
		printf "  \"speedup\": %s\n}\n", v["speedup"]; \
	}' /tmp/bench_mmwave.txt > BENCH_mmwave.json
	@cat BENCH_mmwave.json

# 5G scenario gate: fresh run checked against the scenario's own
# acceptance bars and, when committed, the exact BENCH_mmwave.json
# record (virtual time: same seed => same numbers, no tolerance).
bench-mmwave-gate:
	./scripts/bench_mmwave_gate.sh

verify: build test vet fmt-check obs-determinism chaos adapt flows-determinism migrate-determinism mmwave-determinism
	@echo "verify: OK"
