# Verification entry points. `make verify` is the gate a change must
# pass before merging; the finer-grained targets exist for focused runs.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fmt-check fuzz bench bench-shard obs-determinism chaos adapt verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole suite under the race detector: the sim.Realtime driver and
# the daemons are the only concurrent components, but everything runs.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Native fuzz targets, each for $(FUZZTIME): codec round-trip
# stability and no-panic over the packet parsers.
fuzz:
	$(GO) test ./internal/ip -fuzz FuzzIPParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tcp -fuzz FuzzTCPParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/filter -fuzz FuzzFilterParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/filter -fuzz FuzzSteerKey -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dataplane -fuzz FuzzSteer -fuzztime $(FUZZTIME)

# Hot-path micro-benchmarks, benchstat-ready (10 samples each).
bench:
	./bench.sh

# Sharded data-plane scaling curve: BenchmarkShardedIntercept sizes its
# shard count from GOMAXPROCS, so sweeping -cpu 1,2,4,8 measures the
# aggregate interception rate at 1/2/4/8 shards. The pkts/s metric per
# shard count lands in BENCH_shard.json.
bench-shard:
	$(GO) test ./internal/perf -run '^$$' -bench BenchmarkShardedIntercept \
		-benchmem -cpu 1,2,4,8 -count=1 | tee /tmp/bench_shard.txt
	@awk 'BEGIN { split("1 2 4 8", order, " ") } \
	/^BenchmarkShardedIntercept/ { \
		n = split($$1, name, "-"); cpus = (n > 1) ? name[n] : 1; \
		for (i = 2; i <= NF; i++) if ($$i == "pkts/s") rate[cpus] = $$(i-1); \
	} \
	END { \
		printf "{\n  \"benchmark\": \"BenchmarkShardedIntercept\",\n  \"metric\": \"pkts/s\",\n  \"shards\": {"; \
		sep = ""; \
		for (j = 1; j <= 4; j++) if (order[j] in rate) { \
			printf "%s\n    \"%s\": %s", sep, order[j], rate[order[j]]; sep = ","; \
		} \
		printf "\n  }\n}\n"; \
	}' /tmp/bench_shard.txt > BENCH_shard.json
	@cat BENCH_shard.json

# Two separate processes run the observability demo with the same seed;
# their full event logs and metrics snapshots must be byte-identical.
# (TestObsDeterminism covers the in-process variant; this catches
# process-level leaks like map-iteration or address ordering.)
obs-determinism:
	@$(GO) run ./cmd/wsim -events -seed 7 > /tmp/obs-run1.txt
	@$(GO) run ./cmd/wsim -events -seed 7 > /tmp/obs-run2.txt
	@cmp /tmp/obs-run1.txt /tmp/obs-run2.txt && echo "obs-determinism: OK"

# Chaos soak: the fault-injection scenario under the race detector,
# then two separate processes with the same seed whose full outputs
# (per-leg results, event log, metrics) must be byte-identical. The
# scenario itself asserts transfer integrity, filter quarantine, EEM
# client recovery, and control-plane liveness.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/faults
	@$(GO) run ./cmd/wsim -chaos -seed 11 > /tmp/chaos-run1.txt
	@$(GO) run ./cmd/wsim -chaos -seed 11 > /tmp/chaos-run2.txt
	@cmp /tmp/chaos-run1.txt /tmp/chaos-run2.txt && echo "chaos: OK"

# Adaptive-services gate: the policy-engine scenario under the race
# detector, then two separate processes with the same seed whose full
# outputs (per-leg results, policy trace, event log, metrics) must be
# byte-identical. The scenario itself asserts a complete
# load→hold→unload hysteresis cycle on both proxies and checksum-clean
# transfers on every leg.
adapt:
	$(GO) test -race -count=1 ./internal/policy
	$(GO) test -race -count=1 -run 'TestPolicyDeterminism' ./internal/experiments
	@$(GO) run ./cmd/wsim -adapt -seed 13 > /tmp/adapt-run1.txt
	@$(GO) run ./cmd/wsim -adapt -seed 13 > /tmp/adapt-run2.txt
	@cmp /tmp/adapt-run1.txt /tmp/adapt-run2.txt && echo "adapt: OK"

verify: build test vet fmt-check obs-determinism chaos adapt
	@echo "verify: OK"
