# Verification entry points. `make verify` is the gate a change must
# pass before merging; the finer-grained targets exist for focused runs.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fmt-check fuzz bench obs-determinism verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole suite under the race detector: the sim.Realtime driver and
# the daemons are the only concurrent components, but everything runs.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Native fuzz targets, each for $(FUZZTIME): codec round-trip
# stability and no-panic over the packet parsers.
fuzz:
	$(GO) test ./internal/ip -fuzz FuzzIPParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tcp -fuzz FuzzTCPParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/filter -fuzz FuzzFilterParse -fuzztime $(FUZZTIME)

# Hot-path micro-benchmarks, benchstat-ready (10 samples each).
bench:
	./bench.sh

# Two separate processes run the observability demo with the same seed;
# their full event logs and metrics snapshots must be byte-identical.
# (TestObsDeterminism covers the in-process variant; this catches
# process-level leaks like map-iteration or address ordering.)
obs-determinism:
	@$(GO) run ./cmd/wsim -events -seed 7 > /tmp/obs-run1.txt
	@$(GO) run ./cmd/wsim -events -seed 7 > /tmp/obs-run2.txt
	@cmp /tmp/obs-run1.txt /tmp/obs-run2.txt && echo "obs-determinism: OK"

verify: build test vet fmt-check obs-determinism
	@echo "verify: OK"
