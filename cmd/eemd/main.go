// Command eemd is the EEM server daemon: it serves the Table 6.1/6.2
// variable catalogue of a live simulated proxy host over a real TCP
// port, speaking the newline-delimited JSON protocol that the eem
// client library and Kati use.
//
// Usage:
//
//	eemd [-listen :12001] [-interval 10s]
package main

import (
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/eem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// netConn adapts a real net.Conn to the EEM protocol Conn, funnelling
// writes through the realtime driver so the server never races.
type netConn struct {
	c net.Conn
}

func (n netConn) Write(b []byte) error { _, err := n.c.Write(b); return err }
func (n netConn) Close()               { n.c.Close() }

func main() {
	listen := flag.String("listen", ":12001", "address for the EEM protocol")
	interval := flag.Duration("interval", 10*time.Second, "periodic update interval")
	debug := flag.String("debug", "", "address for expvar/pprof debug HTTP (e.g. localhost:6061); empty disables")
	flag.Parse()

	sys := core.NewSystem(core.Config{Seed: time.Now().UnixNano(), EEMInterval: *interval})
	rt := sim.NewRealtime(sys.Sched)
	go rt.Run(5 * time.Millisecond)

	if *debug != "" {
		serveDebug(*debug, rt, sys.Metrics)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("eemd: %v", err)
	}
	log.Printf("eemd: EEM server on %s (interval %v, %d variables)",
		*listen, *interval, len(sys.EEM.Variables()))
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatalf("eemd: accept: %v", err)
		}
		go serve(conn, rt, sys.EEM)
	}
}

// serveDebug exposes the unified metrics snapshot through expvar
// (under "comma") plus the stock pprof handlers on a debug HTTP port.
func serveDebug(addr string, rt *sim.Realtime, metrics *obs.Registry) {
	expvar.Publish("comma", expvar.Func(func() any {
		var snap []obs.Sample
		rt.DoSync(func() { snap = metrics.Snapshot() })
		out := make(map[string]string, len(snap))
		for _, s := range snap {
			out[s.Name] = s.Value
		}
		return out
	}))
	go func() {
		log.Printf("eemd: debug HTTP (expvar, pprof) on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("eemd: debug HTTP: %v", err)
		}
	}()
}

func serve(conn net.Conn, rt *sim.Realtime, srv *eem.Server) {
	var onData func([]byte)
	var onClose func()
	rt.DoSync(func() { onData, onClose = srv.Accept(netConn{conn}) })
	defer rt.Do(onClose)
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			rt.DoSync(func() { onData(data) })
		}
		if err != nil {
			return
		}
	}
}
