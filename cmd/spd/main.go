// Command spd is the service-proxy daemon: it runs the reference
// Comma topology (wired host — proxy — wireless — mobile) in real
// time, keeps a demonstration TCP stream flowing through the proxy,
// and exposes the SP command interface of thesis §5.3 on a real TCP
// port — so `telnet localhost 12000` reproduces the Fig 5.3 session
// against live filter state.
//
// Usage:
//
//	spd [-listen :12000] [-loss 0.02] [-bw 2000000] [-shards 4]
//	    [-batch 64] [-policy '<rule>' ...] [-churn 0]
//
// Each -policy flag (repeatable) arms one adaptive rule on the policy
// engine; rule state is then inspectable over the control port with
// `policy list` and `policy trace`. See internal/policy for the rule
// grammar.
//
// -churn N skips the daemon entirely: it drives N short-lived flows
// (fresh stream keys, SYN/FIN storms, a wild-card launcher spawning a
// tcp filter per flow) through a concurrent data plane at -shards
// and -batch, prints the throughput and registry-classifier counters,
// and exits. It is the command-line form of the registry churn
// workload (internal/workload, BenchmarkRegistryChurn).
package main

import (
	"bufio"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/workload"
)

func main() {
	listen := flag.String("listen", ":12000", "address for the SP control interface")
	loss := flag.Float64("loss", 0.0, "wireless packet loss probability")
	bw := flag.Int64("bw", 2e6, "wireless bandwidth, bits/s")
	debug := flag.String("debug", "", "address for expvar/pprof debug HTTP (e.g. localhost:6060); empty disables")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "data-plane shard count (1 = classic single interception loop)")
	batch := flag.Int("batch", 0, "concurrent data-plane ring-slot batch size (0 = default; only shapes concurrent planes — the inline simulation intercepts synchronously and ignores it)")
	churn := flag.Int("churn", 0, "drive N short flows through a concurrent data plane, print registry-churn stats, and exit (0 = run the daemon)")
	var rules multiFlag
	flag.Var(&rules, "policy", "adaptive policy rule (repeatable); see internal/policy for the grammar")
	flag.Parse()
	if *churn > 0 {
		runChurn(*churn, *shards, *batch)
		return
	}
	for _, r := range rules {
		if _, err := policy.ParseRule(r); err != nil {
			log.Fatalf("spd: %v", err)
		}
	}

	sys := core.NewSystem(core.Config{
		Seed:   time.Now().UnixNano(),
		Shards: *shards,
		Batch:  *batch,
		Wireless: netsim.LinkConfig{
			Bandwidth: *bw,
			Delay:     10 * time.Millisecond,
			Loss:      netsim.Bernoulli{P: *loss},
		},
		Policy: core.PolicyConfig{Rules: rules},
	})
	rt := sim.NewRealtime(sys.Sched)

	// A perpetual demonstration stream so `report` has something to
	// show: wired:7 -> mobile:1169, refilled as it drains.
	rt.Do(func() {
		sys.MustCommand("load tcp")
		sys.MustCommand("load launcher")
		sys.MustCommand("load wsize")
		sys.MustCommand("load rdrop")
		sys.MustCommand("load snoop")
		sys.MustCommand("load ttsf")
		sys.MustCommand(fmt.Sprintf("add launcher %v 0 %v 0 tcp", core.WiredAddr, core.MobileAddr))
		sys.MobileTCP.Listen(1169, func(c *tcp.Conn) {})
		client, err := sys.WiredTCP.ConnectFrom(7, core.MobileAddr, 1169)
		if err != nil {
			log.Fatalf("demo stream: %v", err)
		}
		var refill func()
		refill = func() {
			if client.State() == tcp.StateEstablished && client.BufferedOut() < 10_000 {
				client.Write(make([]byte, 10_000))
			}
			sys.Sched.After(time.Second, refill)
		}
		client.OnEstablished = func() { sys.Sched.After(0, refill) }
	})
	go rt.Run(5 * time.Millisecond)

	if *debug != "" {
		serveDebug(*debug, rt, sys.Metrics)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("spd: %v", err)
	}
	log.Printf("spd: service proxy control on %s (try: telnet %s then 'report')", *listen, *listen)
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatalf("spd: accept: %v", err)
		}
		go serve(conn, rt, sys)
	}
}

// runChurn is the -churn mode: a registry-churn storm against a real
// concurrent plane. Every flow is first-sight (a compiled-classifier
// lookup), every match spawns a tcp bookkeeping filter through the
// wild-card launcher, and every teardown schedules a queue removal —
// the workload the compiled registry classifier exists for.
func runChurn(flows, shards, batch int) {
	var emitted atomic.Int64
	pl := core.NewConcurrentPlane(core.Config{Seed: 1, Shards: shards, Batch: batch},
		func(_ int, out [][]byte) { emitted.Add(int64(len(out))) })
	defer pl.Close()
	pl.Command("load tcp")
	pl.Command("load launcher")
	pl.Command("add launcher 0.0.0.0 0 0.0.0.0 0 tcp")

	c := workload.NewChurn(workload.ChurnConfig{DataPkts: 1, PayloadSize: 64})
	start := time.Now()
	st := c.Drive(flows, pl.Dispatch)
	pl.Drain()
	elapsed := time.Since(start)

	snap := pl.StatsSnapshot()
	var queues int64
	for i := 0; i < pl.N(); i++ {
		queues += pl.Shard(i).QueueCount()
	}
	log.Printf("spd: churn: %d flows (%d packets, %d bytes) through %d shards in %v",
		st.Flows, st.Packets, st.Bytes, pl.N(), elapsed.Round(time.Millisecond))
	log.Printf("spd: churn: %.0f flows/s, %.0f pkts/s, %d emitted",
		float64(st.Flows)/elapsed.Seconds(), float64(st.Packets)/elapsed.Seconds(), emitted.Load())
	log.Printf("spd: churn: intercepted=%d misses=%d rebuilds=%d live-queues=%d",
		snap.Intercepted, snap.RegistryMisses, snap.RegistryRebuilds, queues)
	fs := pl.FlowStats()
	log.Printf("spd: churn: flow-log active=%d opened=%d closed=%d evicted=%d retrans=%d",
		fs.Active, fs.Opened, fs.Closed, fs.Evicted, fs.Retrans)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// serveDebug exposes the unified metrics snapshot through expvar
// (under "comma") plus the stock pprof handlers on a debug HTTP port.
// Simulation state is only touched inside DoSync, so scrapes are safe
// against the realtime driver.
func serveDebug(addr string, rt *sim.Realtime, metrics *obs.Registry) {
	expvar.Publish("comma", expvar.Func(func() any {
		var snap []obs.Sample
		rt.DoSync(func() { snap = metrics.Snapshot() })
		out := make(map[string]string, len(snap))
		for _, s := range snap {
			out[s.Name] = s.Value
		}
		return out
	}))
	go func() {
		log.Printf("spd: debug HTTP (expvar, pprof) on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("spd: debug HTTP: %v", err)
		}
	}()
}

// serve runs one control session under the same bounds as the
// simulated control port (proxy.serveControlConn): lines are capped at
// proxy.MaxControlLine (an unframed flood gets a diagnostic and the
// session is severed), non-UTF-8 lines are rejected but the session
// lives, and a session idle past proxy.ControlIdleTimeout is dropped.
func serve(conn net.Conn, rt *sim.Realtime, sys *core.System) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 512), proxy.MaxControlLine)
	for {
		conn.SetReadDeadline(time.Now().Add(proxy.ControlIdleTimeout))
		if !sc.Scan() {
			if sc.Err() == bufio.ErrTooLong {
				fmt.Fprintf(conn, "error: command line exceeds %d bytes\n", proxy.MaxControlLine)
			}
			return
		}
		line := sc.Text()
		if !utf8.ValidString(line) {
			if _, err := conn.Write([]byte("error: command line is not valid UTF-8\n")); err != nil {
				return
			}
			continue
		}
		var out string
		rt.DoSync(func() { out = sys.Plane.Command(line) })
		if out != "" {
			if _, err := conn.Write([]byte(out)); err != nil {
				return
			}
		}
	}
}
