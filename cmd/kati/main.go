// Command kati is the interactive Kati shell of thesis chapter 7,
// speaking to spd (service proxies) and eemd (EEM servers) over real
// TCP. It provides third-party monitoring and control of transparent
// stream services: list streams, add and remove filters, watch
// execution-environment variables.
//
// Usage:
//
//	kati
//	kati> sp localhost:12000
//	kati> report
//	kati> watch localhost:12001 sysUpTime GTE 0
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"

	"repro/internal/eem"
	"repro/internal/kati"
)

// lockedWriter serializes shell output against asynchronous replies.
type lockedWriter struct {
	mu sync.Mutex
	w  *os.File
}

func (l *lockedWriter) Write(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(b)
}

func main() {
	out := &lockedWriter{w: os.Stdout}
	// One mutex guards the shell and the EEM client: socket readers
	// deliver replies through it.
	var mu sync.Mutex

	spDial := func(addr string, onReply func(string)) (*kati.SPSession, error) {
		if !strings.Contains(addr, ":") {
			addr += ":12000"
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		go func() {
			sc := bufio.NewScanner(conn)
			for sc.Scan() {
				line := sc.Text()
				mu.Lock()
				onReply(line)
				mu.Unlock()
			}
		}()
		return kati.NewSPSession(
			func(line string) error { _, err := conn.Write([]byte(line)); return err },
			func() { conn.Close() },
		), nil
	}

	eemDial := func(server string) (eem.Conn, func(onData func([]byte)), error) {
		addr := server
		if !strings.Contains(addr, ":") {
			addr += ":12001"
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, nil, err
		}
		wire := func(onData func([]byte)) {
			go func() {
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					if n > 0 {
						data := make([]byte, n)
						copy(data, buf[:n])
						mu.Lock()
						onData(data)
						mu.Unlock()
					}
					if err != nil {
						return
					}
				}
			}()
		}
		return realConn{conn}, wire, nil
	}

	shell := kati.New(out, spDial, eem.NewComma(eemDial))
	fmt.Fprintln(out, "kati — Comma service-control shell (help for commands, ^D to exit)")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprint(out, "kati> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			break
		}
		mu.Lock()
		shell.Exec(line)
		mu.Unlock()
		fmt.Fprint(out, "kati> ")
	}
}

// realConn adapts net.Conn to eem.Conn.
type realConn struct{ c net.Conn }

func (r realConn) Write(b []byte) error { _, err := r.c.Write(b); return err }
func (r realConn) Close()               { r.c.Close() }
