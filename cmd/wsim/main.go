// Command wsim is the experiment driver: it regenerates the thesis's
// tables and figures (DESIGN.md's E1–E16 index) on the deterministic
// network simulator.
//
// Usage:
//
//	wsim -list             list experiments
//	wsim -exp E7           run one experiment
//	wsim -all              run every experiment in order
//	wsim -events           run the observability demo (full event log
//	                       + metrics snapshot; byte-identical per seed)
//	wsim -chaos            run the chaos soak (fault matrix + resilience
//	                       assertions; byte-identical per seed)
//	wsim -adapt            run the adaptive-services scenario (policy
//	                       engines close the EEM→SP loop around a link
//	                       degradation; byte-identical per seed)
//	wsim -flows            run the flow-log analytics scenario (per-flow
//	                       L4 records drive a policy rule on the fleet
//	                       retrans ratio; byte-identical per seed)
//	wsim -migrate          run the live stream-migration scenario (proxy-
//	                       to-proxy handoff under a fault matrix;
//	                       byte-identical per seed)
//	wsim -mmwave           run the 5G mmWave scenario (blockage-trace
//	                       replay on a dual mmWave+LTE topology; mwin
//	                       window control and policy-driven leg shedding
//	                       vs a no-proxy baseline; byte-identical per
//	                       seed)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/faults"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	exp := flag.String("exp", "", "run one experiment by id (e.g. E7)")
	all := flag.Bool("all", false, "run every experiment")
	events := flag.Bool("events", false, "run the observability demo scenario")
	chaos := flag.Bool("chaos", false, "run the chaos soak scenario (fault injection)")
	adapt := flag.Bool("adapt", false, "run the adaptive-services scenario (policy engine)")
	flows := flag.Bool("flows", false, "run the flow-log analytics scenario (per-flow records feed the policy loop)")
	migrateFlag := flag.Bool("migrate", false, "run the live stream-migration scenario (crash-safe proxy-to-proxy handoff)")
	mmwave := flag.Bool("mmwave", false, "run the 5G mmWave scenario (blockage-trace replay, mwin window control, LTE shedding)")
	seed := flag.Int64("seed", 7, "simulation seed for -events/-chaos/-adapt/-flows/-migrate/-mmwave")
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s %s\n", e.ID, e.Paper, e.Description)
		}
	case *exp != "":
		if err := experiments.Run(*exp, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *all:
		experiments.RunAll(os.Stdout)
	case *events:
		if err := experiments.ObsDemo(*seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *chaos:
		if err := faults.Chaos(*seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *adapt:
		if err := experiments.AdaptDemo(*seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *flows:
		if err := experiments.FlowsDemo(*seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *migrateFlag:
		if err := experiments.MigrateDemo(*seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *mmwave:
		if err := experiments.MMWaveDemo(*seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
