// Command wsim is the experiment driver: it regenerates the thesis's
// tables and figures (DESIGN.md's E1–E16 index) on the deterministic
// network simulator.
//
// Usage:
//
//	wsim -list             list experiments
//	wsim -exp E7           run one experiment
//	wsim -all              run every experiment in order
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	exp := flag.String("exp", "", "run one experiment by id (e.g. E7)")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s %s\n", e.ID, e.Paper, e.Description)
		}
	case *exp != "":
		if err := experiments.Run(*exp, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *all:
		experiments.RunAll(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
