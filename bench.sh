#!/bin/sh
# Run the hot-path micro-benchmarks (internal/perf) with allocation
# reporting and enough samples for benchstat. Extra args pass through,
# e.g.:  ./bench.sh -bench InterceptPassThrough
#        ./bench.sh > new.txt && benchstat old.txt new.txt
set -e
cd "$(dirname "$0")"
exec go test ./internal/perf -run '^$' -bench . -benchmem -count=10 "$@"
