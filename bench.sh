#!/bin/sh
# Run the hot-path micro-benchmarks (internal/perf) with allocation
# reporting and enough samples for benchstat. Extra args pass through,
# e.g.:  ./bench.sh -bench InterceptPassThrough
#        ./bench.sh -bench ShardedIntercept -cpu 1,2,4,8 -count 1
#        ./bench.sh > new.txt && benchstat old.txt new.txt
# (`make bench-shard` runs the multi-core shard sweep on its own and
# writes the pkts/s curve to BENCH_shard.json.)
set -e
cd "$(dirname "$0")"
exec go test ./internal/perf -run '^$' -bench . -benchmem -count=10 "$@"
